//! The lexer: source text → [`Token`] stream.
//!
//! Follows the paper's Prolog-flavoured conventions: `%` starts a comment to
//! end of line, identifiers beginning with an upper-case letter (or `_`) are
//! variables, quoted strings use Rust-style escapes (matching what the
//! object printer emits), and `bot`/`top`/`true`/`false`/`inf`/`nan` are
//! keywords.

use crate::{ParseError, Span, Token, TokenKind};

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Lexes `src` into tokens (including a final [`TokenKind::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let tok = lx.next_token()?;
        let eof = tok.kind == TokenKind::Eof;
        out.push(tok);
        if eof {
            return Ok(out);
        }
    }
}

impl<'s> Lexer<'s> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end: self.pos,
            line,
            col,
        }
    }

    fn here(&self) -> Span {
        Span {
            start: self.pos,
            end: (self.pos + 1).min(self.bytes.len()),
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia();
        let (start, line, col) = (self.pos, self.line, self.col);
        let mk = |kind: TokenKind, lx: &Lexer<'_>| Token {
            kind,
            span: lx.span_from(start, line, col),
        };
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: self.here(),
            });
        };
        match b {
            b'[' => {
                self.bump();
                Ok(mk(TokenKind::LBracket, self))
            }
            b']' => {
                self.bump();
                Ok(mk(TokenKind::RBracket, self))
            }
            b'{' => {
                self.bump();
                Ok(mk(TokenKind::LBrace, self))
            }
            b'}' => {
                self.bump();
                Ok(mk(TokenKind::RBrace, self))
            }
            b',' => {
                self.bump();
                Ok(mk(TokenKind::Comma, self))
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Ok(mk(TokenKind::ColonDash, self))
                } else {
                    Ok(mk(TokenKind::Colon, self))
                }
            }
            b'.' => {
                self.bump();
                Ok(mk(TokenKind::Period, self))
            }
            b'"' => self.lex_string(start, line, col),
            b'-' => {
                self.bump();
                match self.peek() {
                    Some(c) if c.is_ascii_digit() => self.lex_number(start, line, col, true),
                    Some(b'i') | Some(b'n') => {
                        // -inf / -nan
                        let word = self.lex_word();
                        match word.as_str() {
                            "inf" => Ok(mk(TokenKind::Float(f64::NEG_INFINITY), self)),
                            "nan" => Ok(mk(TokenKind::Float(f64::NAN), self)),
                            other => Err(ParseError::new(
                                format!("unexpected `-{other}`"),
                                self.span_from(start, line, col),
                            )),
                        }
                    }
                    _ => Err(ParseError::new(
                        "`-` must be followed by a number",
                        self.span_from(start, line, col),
                    )),
                }
            }
            c if c.is_ascii_digit() => self.lex_number(start, line, col, false),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let word = self.lex_word();
                let kind = match word.as_str() {
                    "bot" => TokenKind::Bot,
                    "top" => TokenKind::Top,
                    "true" => TokenKind::Bool(true),
                    "false" => TokenKind::Bool(false),
                    "inf" => TokenKind::Float(f64::INFINITY),
                    "nan" => TokenKind::Float(f64::NAN),
                    _ => {
                        let first = word.chars().next().expect("word is non-empty");
                        if first.is_ascii_uppercase() || first == '_' {
                            TokenKind::Variable(word)
                        } else {
                            TokenKind::Ident(word)
                        }
                    }
                };
                Ok(mk(kind, self))
            }
            other => Err(ParseError::new(
                format!("unexpected character `{}`", other as char),
                self.here(),
            )),
        }
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_string()
    }

    fn lex_number(
        &mut self,
        start: usize,
        line: u32,
        col: u32,
        negative: bool,
    ) -> Result<Token, ParseError> {
        let digits_start = self.pos;
        let mut is_float = false;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b) if b.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            // Only treat as exponent when followed by digits (or sign+digits).
            let next = self.peek2();
            let exp_digits = match next {
                Some(b'+') | Some(b'-') => {
                    matches!(self.bytes.get(self.pos + 2), Some(b) if b.is_ascii_digit())
                }
                Some(b) => b.is_ascii_digit(),
                None => false,
            };
            if exp_digits {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = &self.src[digits_start..self.pos];
        let span = self.span_from(start, line, col);
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|e| ParseError::new(format!("invalid float `{text}`: {e}"), span))?;
            Ok(Token {
                kind: TokenKind::Float(if negative { -v } else { v }),
                span,
            })
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| ParseError::new(format!("integer `{text}` out of range"), span))?;
            Ok(Token {
                kind: TokenKind::Int(if negative { -v } else { v }),
                span,
            })
        }
    }

    fn lex_string(&mut self, start: usize, line: u32, col: u32) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.bump() else {
                return Err(ParseError::new(
                    "unterminated string literal",
                    self.span_from(start, line, col),
                ));
            };
            match b {
                b'"' => {
                    return Ok(Token {
                        kind: TokenKind::Str(out),
                        span: self.span_from(start, line, col),
                    });
                }
                b'\\' => {
                    let Some(esc) = self.bump() else {
                        return Err(ParseError::new(
                            "unterminated escape sequence",
                            self.span_from(start, line, col),
                        ));
                    };
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'0' => out.push('\0'),
                        b'\'' => out.push('\''),
                        b'u' => {
                            // \u{HEX}
                            if self.bump() != Some(b'{') {
                                return Err(ParseError::new(
                                    "expected `{` after `\\u`",
                                    self.here(),
                                ));
                            }
                            let hex_start = self.pos;
                            while matches!(self.peek(), Some(b) if b != b'}') {
                                self.bump();
                            }
                            let hex = &self.src[hex_start..self.pos];
                            if self.bump() != Some(b'}') {
                                return Err(ParseError::new(
                                    "unterminated `\\u{...}` escape",
                                    self.here(),
                                ));
                            }
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| {
                                ParseError::new(
                                    format!("invalid unicode escape `\\u{{{hex}}}`"),
                                    self.here(),
                                )
                            })?;
                            let ch = char::from_u32(cp).ok_or_else(|| {
                                ParseError::new(
                                    format!("invalid unicode code point U+{cp:X}"),
                                    self.here(),
                                )
                            })?;
                            out.push(ch);
                        }
                        other => {
                            return Err(ParseError::new(
                                format!("unknown escape `\\{}`", other as char),
                                self.here(),
                            ));
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8: walk back one byte and take the char.
                    let ch_start = self.pos - 1;
                    let ch = self.src[ch_start..]
                        .chars()
                        .next()
                        .expect("valid utf-8 source");
                    for _ in 1..ch.len_utf8() {
                        self.bump();
                    }
                    out.push(ch);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_keywords() {
        assert_eq!(
            kinds("[ ] { } : , . :- bot top true false"),
            vec![
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Colon,
                TokenKind::Comma,
                TokenKind::Period,
                TokenKind::ColonDash,
                TokenKind::Bot,
                TokenKind::Top,
                TokenKind::Bool(true),
                TokenKind::Bool(false),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn identifiers_and_variables() {
        assert_eq!(
            kinds("john X Name _tmp r1"),
            vec![
                TokenKind::Ident("john".into()),
                TokenKind::Variable("X".into()),
                TokenKind::Variable("Name".into()),
                TokenKind::Variable("_tmp".into()),
                TokenKind::Ident("r1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("25 -7 2.5 -0.5 1e3 2.5e-2"),
            vec![
                TokenKind::Int(25),
                TokenKind::Int(-7),
                TokenKind::Float(2.5),
                TokenKind::Float(-0.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn special_floats() {
        let ks = kinds("inf -inf nan");
        assert_eq!(ks[0], TokenKind::Float(f64::INFINITY));
        assert_eq!(ks[1], TokenKind::Float(f64::NEG_INFINITY));
        assert!(matches!(ks[2], TokenKind::Float(v) if v.is_nan()));
    }

    #[test]
    fn period_after_number_is_a_rule_terminator() {
        // `[a: 1].` — the `.` must not be eaten by the number.
        assert_eq!(
            kinds("1."),
            vec![TokenKind::Int(1), TokenKind::Period, TokenKind::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""hello" "a\"b" "tab\there" "new\nline" "uni\u{1F600}""#),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("tab\there".into()),
                TokenKind::Str("new\nline".into()),
                TokenKind::Str("uni😀".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unicode_passthrough_in_strings() {
        assert_eq!(
            kinds("\"héllo wörld\""),
            vec![TokenKind::Str("héllo wörld".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a % comment [ { \n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("a\n  bcd").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
        assert_eq!(toks[1].span.start, 4);
        assert_eq!(toks[1].span.end, 7);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("@").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("\"bad \\q escape\"").is_err());
        assert!(lex("99999999999999999999999").is_err());
        assert!(lex("- x").is_err());
    }
}

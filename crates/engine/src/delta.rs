//! Structural deltas between successive database states.
//!
//! Classical semi-naive Datalog tracks newly derived tuples. Under the
//! complex-object lattice, "new" is subtler: unioning `[a:1, b:2]` into
//! `{[a:1]}` *replaces* the dominated element, and whole relations can grow
//! in place. A [`Delta`] is a tree aligned with the **new** database that
//! marks, conservatively, which regions differ from the old one:
//!
//! - `Clean` — the sub-object is equal to its old counterpart (checked with
//!   an `Arc::ptr_eq` fast path, so unchanged relations diff in O(1));
//! - `New` — no old counterpart (or too different to pair up);
//! - `Tuple` — both sides are tuples: per-attribute deltas (attributes not
//!   listed are `Clean`);
//! - `Set` — both sides are sets: one flag per element of the *new* set,
//!   `true` when no equal element existed in the old set.
//!
//! Conservatism is safe: marking too much `New` only causes re-derivation,
//! never a missed derivation. The semi-naive matcher
//! ([`crate::dmatch`]) skips a substitution only when *every* part of the
//! database its derivation touched is `Clean` — in which case the identical
//! derivation existed in the previous iteration.

use co_object::{Attr, Object};

/// A change-marking tree aligned with a (new) object. See module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// Sub-object equal to the old counterpart.
    Clean,
    /// Entirely new (or unrecognizably changed) sub-object.
    New,
    /// Both tuples: per-attribute child deltas (unlisted attributes are
    /// clean). Entries sorted by attribute.
    Tuple(Vec<(Attr, Delta)>),
    /// Both sets: `true` flags the elements of the new set that have no
    /// equal counterpart in the old set (aligned with canonical element
    /// order).
    Set(Vec<bool>),
}

/// Shared statics for navigation defaults.
static CLEAN: Delta = Delta::Clean;
static NEW: Delta = Delta::New;

impl Delta {
    /// True when nothing below is new.
    pub fn is_clean(&self) -> bool {
        match self {
            Delta::Clean => true,
            Delta::New => false,
            Delta::Tuple(entries) => entries.iter().all(|(_, d)| d.is_clean()),
            Delta::Set(flags) => flags.iter().all(|f| !f),
        }
    }

    /// A conservative count of this delta's new-marked regions: every
    /// `true` set-element flag counts one, and a bare `New` sub-tree —
    /// whose extent is unknown without the object it describes —
    /// saturates to `u64::MAX`. Tiny-delta heuristics (the engine's
    /// fan-out skip) compare this against a small threshold, so the
    /// saturation guarantees a wholesale change is never mistaken for a
    /// small one.
    pub fn new_marks(&self) -> u64 {
        match self {
            Delta::Clean => 0,
            Delta::New => u64::MAX,
            Delta::Tuple(entries) => entries
                .iter()
                .fold(0u64, |acc, (_, d)| acc.saturating_add(d.new_marks())),
            Delta::Set(flags) => flags.iter().filter(|f| **f).count() as u64,
        }
    }

    /// The delta for attribute `a` of a tuple-shaped node.
    pub fn attr(&self, a: Attr) -> &Delta {
        match self {
            Delta::Clean => &CLEAN,
            Delta::New => &NEW,
            Delta::Tuple(entries) => match entries.binary_search_by_key(&a, |(k, _)| *k) {
                Ok(i) => &entries[i].1,
                Err(_) => &CLEAN,
            },
            // A set node navigated as a tuple: shape confusion — be safe.
            Delta::Set(_) => &NEW,
        }
    }

    /// The delta for element `i` of a set-shaped node.
    pub fn element(&self, i: usize) -> &Delta {
        match self {
            Delta::Clean => &CLEAN,
            Delta::New => &NEW,
            Delta::Set(flags) => {
                if flags.get(i).copied().unwrap_or(true) {
                    &NEW
                } else {
                    &CLEAN
                }
            }
            Delta::Tuple(_) => &NEW,
        }
    }
}

/// Computes the delta from `old` to `new`.
///
/// The result is aligned with `new`. Pairs tuple attributes positionally and
/// set elements by equality; set elements that changed internally (e.g. a
/// person whose nested `children` set grew) are conservatively `New`.
pub fn diff(old: &Object, new: &Object) -> Delta {
    match (old, new) {
        (Object::Tuple(to), Object::Tuple(tn)) => {
            if to == tn {
                return Delta::Clean;
            }
            // If the old tuple has attributes the new one lacks, growth
            // monotonicity was violated; mark everything new to stay safe.
            let shrunk = to.attrs().any(|a| !tn.contains(a));
            if shrunk {
                return Delta::New;
            }
            let mut entries: Vec<(Attr, Delta)> = Vec::new();
            for (a, vn) in tn.entries() {
                let vo = to.get(*a);
                let d = if vo.is_bottom() {
                    Delta::New
                } else {
                    diff(vo, vn)
                };
                if d != Delta::Clean {
                    entries.push((*a, d));
                }
            }
            if entries.is_empty() {
                Delta::Clean
            } else {
                Delta::Tuple(entries)
            }
        }
        (Object::Set(so), Object::Set(sn)) => {
            if so == sn {
                return Delta::Clean;
            }
            // Both element lists are canonically sorted: merge walk.
            let old_elems = so.elements();
            let mut flags = Vec::with_capacity(sn.len());
            let mut j = 0;
            let mut any_new = false;
            for e in sn.elements() {
                while j < old_elems.len() && old_elems[j] < *e {
                    j += 1;
                }
                let fresh = !(j < old_elems.len() && &old_elems[j] == e);
                any_new |= fresh;
                flags.push(fresh);
            }
            if any_new {
                Delta::Set(flags)
            } else {
                Delta::Clean
            }
        }
        (o, n) => {
            if o == n {
                Delta::Clean
            } else {
                Delta::New
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    #[test]
    fn equal_objects_are_clean() {
        let a = obj!([r: {1, 2}, s: {[x: 1]}]);
        assert_eq!(diff(&a, &a.clone()), Delta::Clean);
        assert!(diff(&a, &a).is_clean());
    }

    #[test]
    fn grown_set_flags_only_new_elements() {
        let old = obj!([r: {1, 2}]);
        let new = obj!([r: {1, 2, 3}]);
        let d = diff(&old, &new);
        let r = d.attr(Attr::new("r"));
        // Canonical order of {1,2,3} is 1,2,3: only the last is new.
        assert_eq!(r, &Delta::Set(vec![false, false, true]));
        assert_eq!(r.element(0), &Delta::Clean);
        assert_eq!(r.element(2), &Delta::New);
        assert!(!d.is_clean());
    }

    #[test]
    fn new_attribute_is_new() {
        let old = obj!([r: {1}]);
        let new = obj!([r: {1}, s: {2}]);
        let d = diff(&old, &new);
        assert_eq!(d.attr(Attr::new("r")), &Delta::Clean);
        assert_eq!(d.attr(Attr::new("s")), &Delta::New);
    }

    #[test]
    fn replaced_grown_element_is_new() {
        // Union replaced [a:1] by [a:1, b:2]: the grown element is new.
        let old = obj!([r: {[a: 1]}]);
        let new = obj!([r: {[a: 1, b: 2]}]);
        let d = diff(&old, &new);
        assert_eq!(d.attr(Attr::new("r")).element(0), &Delta::New);
    }

    #[test]
    fn unchanged_relations_stay_clean_next_to_changed_ones() {
        let old = obj!([family: {[name: a]}, doa: {x}]);
        let new = obj!([family: {[name: a]}, doa: {x, y}]);
        let d = diff(&old, &new);
        assert_eq!(d.attr(Attr::new("family")), &Delta::Clean);
        assert!(!d.attr(Attr::new("doa")).is_clean());
        // Attributes never mentioned are clean.
        assert_eq!(d.attr(Attr::new("zzz")), &Delta::Clean);
    }

    #[test]
    fn kind_change_is_new() {
        assert_eq!(diff(&obj!(1), &obj!(2)), Delta::New);
        assert_eq!(diff(&obj!({ 1 }), &obj!([a: 1])), Delta::New);
        assert_eq!(diff(&Object::Bottom, &obj!({ 1 })), Delta::New);
    }

    #[test]
    fn shrunk_tuple_is_conservatively_new() {
        let old = obj!([a: 1, b: 2]);
        let new = obj!([a: 1]);
        assert_eq!(diff(&old, &new), Delta::New);
    }

    #[test]
    fn navigation_through_new_is_new() {
        assert_eq!(NEW.attr(Attr::new("q")), &Delta::New);
        assert_eq!(NEW.element(5), &Delta::New);
        assert_eq!(CLEAN.attr(Attr::new("q")), &Delta::Clean);
        assert_eq!(CLEAN.element(5), &Delta::Clean);
    }

    #[test]
    fn nested_growth_is_localized() {
        let old = obj!([db: [r: {1}, s: {9}]]);
        let new = obj!([db: [r: {1, 2}, s: {9}]]);
        let d = diff(&old, &new);
        let inner = d.attr(Attr::new("db"));
        assert_eq!(inner.attr(Attr::new("s")), &Delta::Clean);
        assert_eq!(inner.attr(Attr::new("r")), &Delta::Set(vec![false, true]));
    }
}

//! Execution tracing for debugging rule programs.

use co_calculus::Substitution;
use co_object::Object;
use std::fmt;

/// One trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An iteration began.
    IterationStart {
        /// 1-based iteration number.
        iteration: u64,
    },
    /// A rule fired with a substitution, contributing a head instantiation.
    RuleFired {
        /// Iteration in which the rule fired.
        iteration: u64,
        /// Index of the rule in the program.
        rule_index: usize,
        /// The satisfying substitution.
        substitution: Substitution,
        /// The head instantiation it contributed.
        contribution: Object,
    },
    /// An iteration ended with the given database size.
    IterationEnd {
        /// 1-based iteration number.
        iteration: u64,
        /// Database node count after the iteration.
        size: u64,
        /// Whether the database changed in this iteration.
        changed: bool,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::IterationStart { iteration } => {
                write!(f, "--- iteration {iteration} ---")
            }
            TraceEvent::RuleFired {
                iteration,
                rule_index,
                substitution,
                contribution,
            } => write!(
                f,
                "[it {iteration}] rule #{rule_index} fired with {substitution} => {contribution}"
            ),
            TraceEvent::IterationEnd {
                iteration,
                size,
                changed,
            } => write!(
                f,
                "[it {iteration}] end: size={size}, {}",
                if *changed { "changed" } else { "fixpoint" }
            ),
        }
    }
}

/// A collector of trace events. The engine records into it when tracing is
/// enabled; recording is `O(1)` amortized per event.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records an event.
    pub fn record(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The rule-fired events only.
    pub fn firings(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RuleFired { .. }))
    }

    /// Renders the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_renders() {
        let mut t = Trace::new();
        t.record(TraceEvent::IterationStart { iteration: 1 });
        t.record(TraceEvent::IterationEnd {
            iteration: 1,
            size: 12,
            changed: false,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.firings().count(), 0);
        let text = t.render();
        assert!(text.contains("iteration 1"));
        assert!(text.contains("fixpoint"));
    }
}

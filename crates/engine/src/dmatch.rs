//! The delta-aware matcher used by semi-naive evaluation.
//!
//! Same backtracking algorithm as `co_calculus::matcher` (see its module
//! docs for the soundness argument), extended with a [`Delta`] overlay
//! walked in parallel with the database object. The search tracks whether
//! the current derivation has *touched* any `New` region; substitutions
//! whose derivations touched only `Clean` regions are skipped — the
//! identical derivation existed against the previous database state, so the
//! previous iteration already produced their head contributions.
//!
//! The equivalence `semi-naive ≡ naive` is checked property-style in
//! `tests/engine_equivalence.rs`.

use crate::delta::Delta;
use co_calculus::{Formula, MatchPolicy, MatchStats, Prefilter, Substitution, Var};
use co_object::lattice::intersect;
use co_object::{Object, Set};
use rustc_hash::{FxHashMap, FxHashSet};

/// One conjunctive sub-goal with its delta overlay.
#[derive(Clone, Copy)]
enum Goal<'a> {
    Sub(&'a Formula, &'a Object, &'a Delta),
    Members(&'a [Formula], &'a Set, &'a Delta),
}

/// Can satisfying this pending goal still touch a changed region?
///
/// Deltas produced by [`crate::delta::diff`] are `Clean` exactly when the
/// whole subtree is unchanged (non-`Clean` nodes always contain dirt), so a
/// structural check suffices. A `Members` goal with no members left has no
/// witness choices left to make.
fn goal_potential(g: &Goal<'_>) -> bool {
    match g {
        Goal::Sub(_, _, d) => !matches!(d, Delta::Clean),
        Goal::Members(ms, _, d) => !ms.is_empty() && !matches!(d, Delta::Clean),
    }
}

struct Search<'a> {
    policy: MatchPolicy,
    prefilter: &'a dyn Prefilter,
    bindings: FxHashMap<Var, Object>,
    trail: Vec<(Var, Option<Object>)>,
    out: FxHashSet<Substitution>,
    vars: &'a [Var],
    dirty: bool,
    stats: MatchStats,
}

impl<'a> Search<'a> {
    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (v, old) = self.trail.pop().expect("trail underflow");
            match old {
                Some(o) => {
                    self.bindings.insert(v, o);
                }
                None => {
                    self.bindings.remove(&v);
                }
            }
        }
    }

    fn meet(&mut self, v: Var, o: &Object) -> Object {
        let old = self.bindings.get(&v).cloned();
        let new = match &old {
            // O(1) on interned handles: equal subtrees share a node.
            Some(cur) if cur == o => cur.clone(),
            Some(cur) => intersect(cur, o),
            None => o.clone(),
        };
        self.trail.push((v, old));
        self.bindings.insert(v, new.clone());
        new
    }

    fn emit(&mut self) {
        self.stats.raw_matches += 1;
        if !self.dirty {
            // Every region this derivation read was unchanged: the previous
            // iteration derived the same substitution. Skip.
            return;
        }
        let subst = Substitution::from_pairs(
            self.vars
                .iter()
                .map(|v| (*v, self.bindings.get(v).cloned().unwrap_or(Object::Top))),
        );
        if self.policy == MatchPolicy::Strict && subst.has_bottom_binding() {
            return;
        }
        self.out.insert(subst);
    }

    fn solve(&mut self, stack: &mut Vec<Goal<'a>>) {
        let Some(goal) = stack.pop() else {
            self.emit();
            return;
        };
        match goal {
            Goal::Sub(f, o, d) => self.solve_sub(f, o, d, stack),
            Goal::Members(ms, s, d) => self.solve_members(ms, s, d, stack),
        }
        stack.push(goal);
    }

    /// Runs `body` with the dirty flag additionally set when this step
    /// touched a `New` region, restoring the previous flag afterwards so
    /// dirtiness never leaks into sibling alternatives.
    fn with_dirty<R>(&mut self, touched_new: bool, body: impl FnOnce(&mut Self) -> R) -> R {
        let saved = self.dirty;
        self.dirty |= touched_new;
        let r = body(self);
        self.dirty = saved;
        r
    }

    fn solve_sub(
        &mut self,
        f: &'a Formula,
        o: &'a Object,
        d: &'a Delta,
        stack: &mut Vec<Goal<'a>>,
    ) {
        let touched_new = matches!(d, Delta::New);
        match (f, o) {
            (Formula::Bottom, _) => self.solve(stack),
            (_, Object::Top) => self.with_dirty(touched_new, |s| s.solve(stack)),
            (Formula::Var(v), _) => {
                let mark = self.mark();
                let new = self.meet(*v, o);
                if !(self.policy == MatchPolicy::Strict && new.is_bottom()) {
                    // Binding to a changed part makes the derivation new —
                    // even when the delta is a structured Tuple/Set node
                    // (the variable captures the whole sub-object).
                    let var_touches_new = !d.is_clean();
                    self.with_dirty(var_touches_new, |s| s.solve(stack));
                }
                self.undo_to(mark);
            }
            (Formula::Atom(a), Object::Atom(b)) if a == b => {
                self.with_dirty(touched_new, |s| s.solve(stack));
            }
            (Formula::Tuple(entries), Object::Tuple(_)) => {
                let depth = stack.len();
                for (attr, fe) in entries {
                    stack.push(Goal::Sub(fe, o.dot(*attr), d.attr(*attr)));
                }
                self.with_dirty(touched_new, |s| s.solve(stack));
                stack.truncate(depth);
            }
            (Formula::Set(members), Object::Set(s)) => {
                let depth = stack.len();
                stack.push(Goal::Members(members.as_slice(), s, d));
                self.with_dirty(touched_new, |s2| s2.solve(stack));
                stack.truncate(depth);
            }
            _ => {}
        }
    }

    fn solve_members(
        &mut self,
        members: &'a [Formula],
        set: &'a Set,
        d: &'a Delta,
        stack: &mut Vec<Goal<'a>>,
    ) {
        let Some((first, rest)) = members.split_first() else {
            self.solve(stack);
            return;
        };

        // Semi-naive candidate pruning. If the derivation so far is clean
        // and no *pending* goal can reach a changed region, then only the
        // choices made from here on can make this derivation new:
        //
        // - if this set's delta is `Clean`, nothing below can be new —
        //   every derivation through it was found last iteration: fail
        //   fast;
        // - if this is the *last* member of the set formula, its witness is
        //   the only remaining chance to touch dirt — restrict candidates
        //   to the set's dirty elements. (Earlier members cannot be
        //   restricted: a later member of the same set may still pick a
        //   dirty witness.)
        let stack_potential = stack.iter().any(goal_potential);
        let only_dirty_can_matter = !self.dirty && !stack_potential;
        if only_dirty_can_matter && matches!(d, Delta::Clean) {
            return;
        }
        let dirty_flags: Option<&[bool]> = match d {
            Delta::Set(flags) if only_dirty_can_matter && rest.is_empty() => Some(flags),
            _ => None,
        };
        let admissible = |i: usize| dirty_flags.map(|f| f.get(i) == Some(&true)).unwrap_or(true);

        let candidates = {
            let bindings = &self.bindings;
            let lookup = |v: Var| bindings.get(&v).cloned();
            self.prefilter.candidates(set, first, &lookup)
        };
        match candidates {
            Some(idxs) => {
                for i in idxs {
                    if !admissible(i) {
                        continue;
                    }
                    if let Some(e) = set.elements().get(i) {
                        self.try_witness(first, rest, set, d, e, d.element(i), stack);
                    }
                }
            }
            None => {
                for (i, e) in set.elements().iter().enumerate() {
                    if !admissible(i) {
                        continue;
                    }
                    self.try_witness(first, rest, set, d, e, d.element(i), stack);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_witness(
        &mut self,
        first: &'a Formula,
        rest: &'a [Formula],
        set: &'a Set,
        set_delta: &'a Delta,
        e: &'a Object,
        e_delta: &'a Delta,
        stack: &mut Vec<Goal<'a>>,
    ) {
        self.stats.candidates_tried += 1;
        let mark = self.mark();
        let depth = stack.len();
        stack.push(Goal::Members(rest, set, set_delta));
        stack.push(Goal::Sub(first, e, e_delta));
        self.solve(stack);
        stack.truncate(depth);
        self.undo_to(mark);
    }
}

/// Enumerates the substitutions `σ` with `σf ≤ o` whose derivations touch
/// at least one `New` region of `delta` — the semi-naive increment.
pub fn delta_match(
    f: &Formula,
    o: &Object,
    delta: &Delta,
    policy: MatchPolicy,
    prefilter: &dyn Prefilter,
) -> (Vec<Substitution>, MatchStats) {
    let vars = f.variables();
    let mut search = Search {
        policy,
        prefilter,
        bindings: FxHashMap::default(),
        trail: Vec::new(),
        out: FxHashSet::default(),
        vars: &vars,
        dirty: false,
        stats: MatchStats::default(),
    };
    let mut stack = Vec::new();
    stack.push(Goal::Sub(f, o, delta));
    search.solve(&mut stack);
    search.stats.matches = search.out.len() as u64;
    let mut result: Vec<Substitution> = search.out.into_iter().collect();
    result.sort_by(|a, b| a.iter().cmp(b.iter()));
    (result, search.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::diff;
    use co_calculus::{matches, wff, ScanAll};
    use co_object::obj;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    fn dm(f: &Formula, o: &Object, d: &Delta) -> Vec<Substitution> {
        delta_match(f, o, d, MatchPolicy::Strict, &ScanAll).0
    }

    #[test]
    fn clean_delta_yields_nothing() {
        let db = obj!([r: {1, 2, 3}]);
        let f = wff!([r: {(x())}]);
        assert!(dm(&f, &db, &Delta::Clean).is_empty());
    }

    #[test]
    fn all_new_delta_equals_full_match() {
        let db = obj!([r1: {[a: 1, b: 10], [a: 2, b: 20]}, r2: {[c: 10]}]);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        let full = matches(&f, &db, MatchPolicy::Strict);
        let delta_all = dm(&f, &db, &Delta::New);
        assert_eq!(full, delta_all);
    }

    #[test]
    fn only_derivations_touching_new_elements_emit() {
        let old = obj!([r: {1, 2}]);
        let new = obj!([r: {1, 2, 3}]);
        let d = diff(&old, &new);
        let f = wff!([r: {(x())}]);
        let ms = dm(&f, &new, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(3)));
    }

    #[test]
    fn joins_with_one_new_side_fire() {
        // New r2 element joins an old r1 element: the derivation touches a
        // new region, so it must be produced.
        let old = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 99]}]);
        let new = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 99], [c: 10]}]);
        let d = diff(&old, &new);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        let ms = dm(&f, &new, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(1)));
    }

    #[test]
    fn old_old_derivations_are_skipped() {
        let old = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 10]}]);
        let new = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 10], [c: 77]}]);
        let d = diff(&old, &new);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        // The only derivation (1,10)↔(c:10) uses exclusively old elements.
        assert!(dm(&f, &new, &d).is_empty());
    }

    #[test]
    fn variable_bound_to_partially_new_region_counts_as_new() {
        // X captures the whole (grown) relation value: new derivation.
        let old = obj!([r: {1}]);
        let new = obj!([r: {1, 2}]);
        let d = diff(&old, &new);
        let f = wff!([r: (x())]);
        let ms = dm(&f, &new, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!({1, 2})));
    }

    #[test]
    fn facts_never_fire_in_delta_mode() {
        let db = obj!([r: {1}]);
        let d = diff(&obj!([r: {}]), &db);
        assert!(dm(&Formula::Bottom, &db, &d).is_empty());
    }

    #[test]
    fn dirty_flag_does_not_leak_across_alternatives() {
        // First witness (new) emits; second witness (old) must not inherit
        // the dirty flag from the failed/completed first alternative.
        let old = obj!([r: {[k: 1, v: 10]}]);
        let new = obj!([r: {[k: 1, v: 10], [k: 2, v: 20]}]);
        let d = diff(&old, &new);
        let f = wff!([r: {[k: (x()), v: (y())]}]);
        let ms = dm(&f, &new, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(2)));
    }
}

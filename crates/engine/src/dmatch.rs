//! The delta-aware matcher used by semi-naive evaluation.
//!
//! Same backtracking algorithm as `co_calculus::matcher` (see its module
//! docs for the soundness argument), extended with a [`Delta`] overlay
//! walked in parallel with the database object. The search tracks whether
//! the current derivation has *touched* any `New` region; substitutions
//! whose derivations touched only `Clean` regions are skipped — the
//! identical derivation existed against the previous database state, so the
//! previous iteration already produced their head contributions.
//!
//! The equivalence `semi-naive ≡ naive` is checked property-style in
//! `tests/engine_equivalence.rs`.
//!
//! # Partitioned matching (parallel evaluation)
//!
//! The search tree of one rule body has exactly one *root* choice point:
//! the first set-member witness loop reached on the (deterministic) path
//! from the root formula. [`delta_match_part`] splits that loop by witness
//! position modulo a [`Partition`]: part `i` of `n` tries only candidates
//! at positions `≡ i (mod n)`. The parts' solution sets are therefore
//! (a) collectively exhaustive — every candidate position belongs to some
//! part — and (b) disjoint *as derivations*, though two derivations in
//! different parts may still emit the same substitution, so callers must
//! deduplicate when merging parts. The parallel engine runs the parts of
//! each rule as independent work units and merges them back in rule order,
//! which is what keeps parallel evaluation's results and trace identical
//! to sequential evaluation's.

use crate::delta::Delta;
use co_calculus::{Formula, MatchPolicy, MatchStats, Prefilter, Substitution, Var};
use co_object::lattice::intersect;
use co_object::{Object, Set};
use rustc_hash::{FxHashMap, FxHashSet};

/// One conjunctive sub-goal with its delta overlay.
#[derive(Clone, Copy)]
enum Goal<'a> {
    Sub(&'a Formula, &'a Object, &'a Delta),
    Members(&'a [Formula], &'a Set, &'a Delta),
}

/// Can satisfying this pending goal still touch a changed region?
///
/// Deltas produced by [`crate::delta::diff`] are `Clean` exactly when the
/// whole subtree is unchanged (non-`Clean` nodes always contain dirt), so a
/// structural check suffices. A `Members` goal with no members left has no
/// witness choices left to make.
fn goal_potential(g: &Goal<'_>) -> bool {
    match g {
        Goal::Sub(_, _, d) => !matches!(d, Delta::Clean),
        Goal::Members(ms, _, d) => !ms.is_empty() && !matches!(d, Delta::Clean),
    }
}

/// One slice of a partitioned match: this search explores only the root
/// choice-point candidates at positions `≡ index (mod of)`. See the module
/// docs for the exhaustiveness/disjointness argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Which slice this is (`0 ≤ index < of`).
    pub index: usize,
    /// Total number of slices.
    pub of: usize,
}

impl Partition {
    #[inline]
    fn admits(&self, i: usize) -> bool {
        i % self.of == self.index
    }
}

/// True when matching `f` can reach a witness loop that a [`Partition`]
/// could slice — i.e. `f` contains a set formula with at least one member.
/// Bodies without one (fact bodies, pure tuple/variable/constant shapes)
/// explore a single derivation path, so slicing them into partitions would
/// only run identical full searches whose duplicate results the merge then
/// discards; the parallel engine dispatches such rules as one unit.
pub fn has_choice_point(f: &Formula) -> bool {
    match f {
        Formula::Bottom | Formula::Var(_) | Formula::Atom(_) => false,
        Formula::Tuple(entries) => entries.iter().any(|(_, e)| has_choice_point(e)),
        Formula::Set(members) => !members.is_empty(),
    }
}

struct Search<'a> {
    policy: MatchPolicy,
    prefilter: &'a dyn Prefilter,
    bindings: FxHashMap<Var, Object>,
    trail: Vec<(Var, Option<Object>)>,
    out: FxHashSet<Substitution>,
    vars: &'a [Var],
    dirty: bool,
    /// Consumed (taken) by the first witness loop reached — the root choice
    /// point; `None` afterwards, so nested loops enumerate fully.
    partition: Option<Partition>,
    stats: MatchStats,
}

impl<'a> Search<'a> {
    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (v, old) = self.trail.pop().expect("trail underflow");
            match old {
                Some(o) => {
                    self.bindings.insert(v, o);
                }
                None => {
                    self.bindings.remove(&v);
                }
            }
        }
    }

    fn meet(&mut self, v: Var, o: &Object) -> Object {
        let old = self.bindings.get(&v).cloned();
        let new = match &old {
            // O(1) on interned handles: equal subtrees share a node.
            Some(cur) if cur == o => cur.clone(),
            Some(cur) => intersect(cur, o),
            None => o.clone(),
        };
        self.trail.push((v, old));
        self.bindings.insert(v, new.clone());
        new
    }

    fn emit(&mut self) {
        self.stats.raw_matches += 1;
        if !self.dirty {
            // Every region this derivation read was unchanged: the previous
            // iteration derived the same substitution. Skip.
            return;
        }
        let subst = Substitution::from_pairs(
            self.vars
                .iter()
                .map(|v| (*v, self.bindings.get(v).cloned().unwrap_or(Object::Top))),
        );
        if self.policy == MatchPolicy::Strict && subst.has_bottom_binding() {
            return;
        }
        self.out.insert(subst);
    }

    fn solve(&mut self, stack: &mut Vec<Goal<'a>>) {
        let Some(goal) = stack.pop() else {
            self.emit();
            return;
        };
        match goal {
            Goal::Sub(f, o, d) => self.solve_sub(f, o, d, stack),
            Goal::Members(ms, s, d) => self.solve_members(ms, s, d, stack),
        }
        stack.push(goal);
    }

    /// Runs `body` with the dirty flag additionally set when this step
    /// touched a `New` region, restoring the previous flag afterwards so
    /// dirtiness never leaks into sibling alternatives.
    fn with_dirty<R>(&mut self, touched_new: bool, body: impl FnOnce(&mut Self) -> R) -> R {
        let saved = self.dirty;
        self.dirty |= touched_new;
        let r = body(self);
        self.dirty = saved;
        r
    }

    fn solve_sub(
        &mut self,
        f: &'a Formula,
        o: &'a Object,
        d: &'a Delta,
        stack: &mut Vec<Goal<'a>>,
    ) {
        let touched_new = matches!(d, Delta::New);
        match (f, o) {
            (Formula::Bottom, _) => self.solve(stack),
            (_, Object::Top) => self.with_dirty(touched_new, |s| s.solve(stack)),
            (Formula::Var(v), _) => {
                let mark = self.mark();
                let new = self.meet(*v, o);
                if !(self.policy == MatchPolicy::Strict && new.is_bottom()) {
                    // Binding to a changed part makes the derivation new —
                    // even when the delta is a structured Tuple/Set node
                    // (the variable captures the whole sub-object).
                    let var_touches_new = !d.is_clean();
                    self.with_dirty(var_touches_new, |s| s.solve(stack));
                }
                self.undo_to(mark);
            }
            (Formula::Atom(a), Object::Atom(b)) if a == b => {
                self.with_dirty(touched_new, |s| s.solve(stack));
            }
            (Formula::Tuple(entries), Object::Tuple(_)) => {
                let depth = stack.len();
                for (attr, fe) in entries {
                    stack.push(Goal::Sub(fe, o.dot(*attr), d.attr(*attr)));
                }
                self.with_dirty(touched_new, |s| s.solve(stack));
                stack.truncate(depth);
            }
            (Formula::Set(members), Object::Set(s)) => {
                let depth = stack.len();
                stack.push(Goal::Members(members.as_slice(), s, d));
                self.with_dirty(touched_new, |s2| s2.solve(stack));
                stack.truncate(depth);
            }
            _ => {}
        }
    }

    fn solve_members(
        &mut self,
        members: &'a [Formula],
        set: &'a Set,
        d: &'a Delta,
        stack: &mut Vec<Goal<'a>>,
    ) {
        let Some((first, rest)) = members.split_first() else {
            self.solve(stack);
            return;
        };

        // Semi-naive candidate pruning. If the derivation so far is clean
        // and no *pending* goal can reach a changed region, then only the
        // choices made from here on can make this derivation new:
        //
        // - if this set's delta is `Clean`, nothing below can be new —
        //   every derivation through it was found last iteration: fail
        //   fast;
        // - if this is the *last* member of the set formula, its witness is
        //   the only remaining chance to touch dirt — restrict candidates
        //   to the set's dirty elements. (Earlier members cannot be
        //   restricted: a later member of the same set may still pick a
        //   dirty witness.)
        let stack_potential = stack.iter().any(goal_potential);
        let only_dirty_can_matter = !self.dirty && !stack_potential;
        if only_dirty_can_matter && matches!(d, Delta::Clean) {
            return;
        }
        let dirty_flags: Option<&[bool]> = match d {
            Delta::Set(flags) if only_dirty_can_matter && rest.is_empty() => Some(flags),
            _ => None,
        };
        // The first witness loop reached is the root choice point: consume
        // the partition here (once), restricting candidates to this slice.
        let partition = self.partition.take();
        let admissible = |i: usize| {
            partition.map(|p| p.admits(i)).unwrap_or(true)
                && dirty_flags.map(|f| f.get(i) == Some(&true)).unwrap_or(true)
        };

        let candidates = {
            let bindings = &self.bindings;
            let lookup = |v: Var| bindings.get(&v).cloned();
            self.prefilter.candidates(set, first, &lookup)
        };
        match candidates {
            Some(idxs) => {
                for i in idxs {
                    if !admissible(i) {
                        continue;
                    }
                    if let Some(e) = set.elements().get(i) {
                        self.try_witness(first, rest, set, d, e, d.element(i), stack);
                    }
                }
            }
            None => {
                for (i, e) in set.elements().iter().enumerate() {
                    if !admissible(i) {
                        continue;
                    }
                    self.try_witness(first, rest, set, d, e, d.element(i), stack);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_witness(
        &mut self,
        first: &'a Formula,
        rest: &'a [Formula],
        set: &'a Set,
        set_delta: &'a Delta,
        e: &'a Object,
        e_delta: &'a Delta,
        stack: &mut Vec<Goal<'a>>,
    ) {
        self.stats.candidates_tried += 1;
        let mark = self.mark();
        let depth = stack.len();
        stack.push(Goal::Members(rest, set, set_delta));
        stack.push(Goal::Sub(first, e, e_delta));
        self.solve(stack);
        stack.truncate(depth);
        self.undo_to(mark);
    }
}

/// Enumerates the substitutions `σ` with `σf ≤ o` whose derivations touch
/// at least one `New` region of `delta` — the semi-naive increment.
///
/// As a special case, a *root* delta of [`Delta::New`] marks the entire
/// database as changed, making this exactly the full (naive) match of
/// `co_calculus::match_with` — including the empty derivations of fact
/// bodies. The parallel engine relies on this to run first iterations and
/// naive rounds through the same partitioned code path.
pub fn delta_match(
    f: &Formula,
    o: &Object,
    delta: &Delta,
    policy: MatchPolicy,
    prefilter: &dyn Prefilter,
) -> (Vec<Substitution>, MatchStats) {
    delta_match_part(f, o, delta, policy, prefilter, None)
}

/// [`delta_match`] restricted to one [`Partition`] slice of the root choice
/// point (`None` = the whole search). Merging the sorted outputs of all
/// `of` slices and deduplicating reproduces the unpartitioned result
/// exactly — see the module docs.
pub fn delta_match_part(
    f: &Formula,
    o: &Object,
    delta: &Delta,
    policy: MatchPolicy,
    prefilter: &dyn Prefilter,
    partition: Option<Partition>,
) -> (Vec<Substitution>, MatchStats) {
    let vars = f.variables();
    let mut search = Search {
        policy,
        prefilter,
        bindings: FxHashMap::default(),
        trail: Vec::new(),
        out: FxHashSet::default(),
        vars: &vars,
        // A root-level `New` delta means "everything changed": every
        // derivation (even the empty one of a fact body) is an increment.
        dirty: matches!(delta, Delta::New),
        partition,
        stats: MatchStats::default(),
    };
    let mut stack = Vec::new();
    stack.push(Goal::Sub(f, o, delta));
    search.solve(&mut stack);
    search.stats.matches = search.out.len() as u64;
    let mut result: Vec<Substitution> = search.out.into_iter().collect();
    result.sort_by(|a, b| a.iter().cmp(b.iter()));
    (result, search.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::diff;
    use co_calculus::{matches, wff, ScanAll};
    use co_object::obj;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    fn dm(f: &Formula, o: &Object, d: &Delta) -> Vec<Substitution> {
        delta_match(f, o, d, MatchPolicy::Strict, &ScanAll).0
    }

    #[test]
    fn clean_delta_yields_nothing() {
        let db = obj!([r: {1, 2, 3}]);
        let f = wff!([r: {(x())}]);
        assert!(dm(&f, &db, &Delta::Clean).is_empty());
    }

    #[test]
    fn all_new_delta_equals_full_match() {
        let db = obj!([r1: {[a: 1, b: 10], [a: 2, b: 20]}, r2: {[c: 10]}]);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        let full = matches(&f, &db, MatchPolicy::Strict);
        let delta_all = dm(&f, &db, &Delta::New);
        assert_eq!(full, delta_all);
    }

    #[test]
    fn only_derivations_touching_new_elements_emit() {
        let old = obj!([r: {1, 2}]);
        let new = obj!([r: {1, 2, 3}]);
        let d = diff(&old, &new);
        let f = wff!([r: {(x())}]);
        let ms = dm(&f, &new, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(3)));
    }

    #[test]
    fn joins_with_one_new_side_fire() {
        // New r2 element joins an old r1 element: the derivation touches a
        // new region, so it must be produced.
        let old = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 99]}]);
        let new = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 99], [c: 10]}]);
        let d = diff(&old, &new);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        let ms = dm(&f, &new, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(1)));
    }

    #[test]
    fn old_old_derivations_are_skipped() {
        let old = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 10]}]);
        let new = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 10], [c: 77]}]);
        let d = diff(&old, &new);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        // The only derivation (1,10)↔(c:10) uses exclusively old elements.
        assert!(dm(&f, &new, &d).is_empty());
    }

    #[test]
    fn variable_bound_to_partially_new_region_counts_as_new() {
        // X captures the whole (grown) relation value: new derivation.
        let old = obj!([r: {1}]);
        let new = obj!([r: {1, 2}]);
        let d = diff(&old, &new);
        let f = wff!([r: (x())]);
        let ms = dm(&f, &new, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!({1, 2})));
    }

    #[test]
    fn facts_never_fire_in_delta_mode() {
        let db = obj!([r: {1}]);
        let d = diff(&obj!([r: {}]), &db);
        assert!(dm(&Formula::Bottom, &db, &d).is_empty());
    }

    #[test]
    fn root_new_delta_fires_facts_like_a_full_match() {
        // A root `New` marks the whole database changed: the fact body's
        // empty derivation is an increment, exactly as in a naive match.
        let db = obj!([r: {1}]);
        let ms = dm(&Formula::Bottom, &db, &Delta::New);
        assert_eq!(ms.len(), 1);
        assert_eq!(matches(&Formula::Bottom, &db, MatchPolicy::Strict), ms);
    }

    #[test]
    fn partitions_cover_the_full_match_exactly() {
        let db = obj!([r1: {[a: 1, b: 10], [a: 2, b: 20], [a: 3, b: 10], [a: 4, b: 20]},
                       r2: {[c: 10], [c: 20]}]);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        let full = dm(&f, &db, &Delta::New);
        assert_eq!(full.len(), 4);
        for of in [1usize, 2, 3, 4, 7] {
            let mut merged: Vec<Substitution> = (0..of)
                .flat_map(|index| {
                    delta_match_part(
                        &f,
                        &db,
                        &Delta::New,
                        MatchPolicy::Strict,
                        &ScanAll,
                        Some(Partition { index, of }),
                    )
                    .0
                })
                .collect();
            merged.sort_by(|a, b| a.iter().cmp(b.iter()));
            merged.dedup();
            assert_eq!(merged, full, "partition of={of}");
        }
    }

    #[test]
    fn partitioned_semi_naive_increments_merge_to_the_unpartitioned_ones() {
        let old = obj!([r1: {[a: 1, b: 10]}, r2: {[c: 99]}]);
        let new = obj!([r1: {[a: 1, b: 10], [a: 2, b: 10]}, r2: {[c: 99], [c: 10]}]);
        let d = diff(&old, &new);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        let full = dm(&f, &new, &d);
        assert_eq!(full.len(), 2);
        let of = 3;
        let mut merged: Vec<Substitution> = (0..of)
            .flat_map(|index| {
                delta_match_part(
                    &f,
                    &new,
                    &d,
                    MatchPolicy::Strict,
                    &ScanAll,
                    Some(Partition { index, of }),
                )
                .0
            })
            .collect();
        merged.sort_by(|a, b| a.iter().cmp(b.iter()));
        merged.dedup();
        assert_eq!(merged, full);
    }

    #[test]
    fn dirty_flag_does_not_leak_across_alternatives() {
        // First witness (new) emits; second witness (old) must not inherit
        // the dirty flag from the failed/completed first alternative.
        let old = obj!([r: {[k: 1, v: 10]}]);
        let new = obj!([r: {[k: 1, v: 10], [k: 2, v: 20]}]);
        let d = diff(&old, &new);
        let f = wff!([r: {[k: (x()), v: (y())]}]);
        let ms = dm(&f, &new, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(2)));
    }
}

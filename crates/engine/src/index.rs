//! Attribute-value indexes over set objects.
//!
//! Matching a tuple-shaped member formula like `[a: 5, b: Y]` against a
//! large set is a scan; an index from `(attribute, atomic value)` to element
//! positions turns the constant (and bound-variable) constraints into hash
//! probes. This is the classic access-path substrate of a database engine,
//! adapted to complex objects: indexes are built per *set node*, keyed by
//! the set's stable [`NodeId`] from the hash-consed store. Because node ids
//! identify canonical *values* (equal sets are the same interned node) and
//! are never recycled, unchanged relations keep their index across fixpoint
//! iterations even when a later iteration *re-derives* an equal set through
//! a different code path — and a dropped set's id can never alias a new
//! allocation (the ABA hazard of raw `Arc` addresses).
//!
//! Soundness contract (required by [`Prefilter`]): a returned candidate list
//! contains **every** element the member formula could match. Constant-atom
//! constraints are exact in every policy (an atom matches only itself — ⊤
//! cannot occur inside a canonical set). Bound-variable constraints are used
//! only under [`MatchPolicy::Strict`]: under `Literal`, a variable may bind
//! ⊥ against a mismatching element, so the probe would be unsound.

use co_calculus::{Formula, MatchPolicy, Prefilter, Var};
use co_object::{Atom, Attr, NodeId, Object, Set};
use rustc_hash::{FxHashMap, FxHashSet};

/// An index over one set object: `attr → atom → positions`.
///
/// Nested maps (rather than a composite `(Attr, Atom)` key) let the hot
/// probe path look up by `&Atom` — no per-probe clone of string atoms.
#[derive(Debug, Default)]
pub struct SetIndex {
    by_attr: FxHashMap<Attr, FxHashMap<Atom, Vec<usize>>>,
}

impl SetIndex {
    /// Builds the index for `set`: every top-level atomic attribute value of
    /// every tuple element is indexed.
    ///
    /// Flat relations large enough to have a columnar arena (see
    /// `co_object::columnar`) are indexed column-major from the dense
    /// arena — one contiguous pass per attribute instead of a pointer
    /// chase per element. Arena row order is element order, so the
    /// positions are identical to the scan path's.
    pub fn build(set: &Set) -> SetIndex {
        let mut by_attr: FxHashMap<Attr, FxHashMap<Atom, Vec<usize>>> = FxHashMap::default();
        if let Some(cols) = co_object::columnar::arena_for(set) {
            for (c, &a) in cols.schema().iter().enumerate() {
                let by_atom = by_attr.entry(a).or_default();
                for (i, atom) in cols.column(c).iter().enumerate() {
                    by_atom.entry(atom.clone()).or_default().push(i);
                }
            }
            return SetIndex { by_attr };
        }
        for (i, e) in set.elements().iter().enumerate() {
            if let Object::Tuple(t) = e {
                for (a, v) in t.entries() {
                    if let Object::Atom(atom) = v {
                        by_attr
                            .entry(*a)
                            .or_default()
                            .entry(atom.clone())
                            .or_default()
                            .push(i);
                    }
                }
            }
        }
        SetIndex { by_attr }
    }

    /// Positions of elements whose attribute `a` equals `atom`.
    /// Allocation-free: probes borrow the caller's atom.
    pub fn probe(&self, a: Attr, atom: &Atom) -> &[usize] {
        self.by_attr
            .get(&a)
            .and_then(|m| m.get(atom))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct `(attr, atom)` keys.
    pub fn keys(&self) -> usize {
        self.by_attr.values().map(FxHashMap::len).sum()
    }
}

/// A registry of [`SetIndex`]es keyed by interned set [`NodeId`], with lazy
/// construction and cross-iteration reuse: because equal sets are the same
/// interned node, an index built in one iteration serves every later
/// occurrence of that *value* — including re-derivations through different
/// code paths, which distinct-allocation keying would miss.
#[derive(Default)]
pub struct IndexRegistry {
    indexes: FxHashMap<NodeId, SetIndex>,
    /// Sets smaller than this are scanned — index bookkeeping would cost
    /// more than it saves.
    pub min_set_len: usize,
}

impl IndexRegistry {
    /// Creates an empty registry with the default size threshold.
    pub fn new() -> IndexRegistry {
        IndexRegistry {
            indexes: FxHashMap::default(),
            min_set_len: 16,
        }
    }

    /// Returns (building if necessary) the index for `set`, or `None` for
    /// sets below the size threshold.
    pub fn index_for(&mut self, set: &Set) -> Option<&SetIndex> {
        if set.len() < self.min_set_len {
            return None;
        }
        Some(
            self.indexes
                .entry(set.node_id())
                .or_insert_with(|| SetIndex::build(set)),
        )
    }

    /// The already-built index for `set`, if any — never builds. The
    /// shared-lock fast path of [`IndexedPrefilter`] uses this so
    /// concurrent probes of existing indexes don't serialize.
    pub fn existing(&self, set: &Set) -> Option<&SetIndex> {
        if set.len() < self.min_set_len {
            return None;
        }
        self.indexes.get(&set.node_id())
    }

    /// Drops indexes for sets no longer reachable from `db` (call once per
    /// iteration to bound memory; node ids are never recycled, so — unlike
    /// the old pointer-keyed scheme — a stale entry can go *unused* but can
    /// never alias a different set).
    pub fn retain_reachable(&mut self, db: &Object) {
        let mut live: FxHashSet<NodeId> = FxHashSet::default();
        collect_set_keys(db, &mut live);
        self.indexes.retain(|k, _| live.contains(k));
    }

    /// Number of materialized indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True when no index is materialized.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

fn collect_set_keys(o: &Object, out: &mut FxHashSet<NodeId>) {
    match o {
        Object::Set(s) => {
            out.insert(s.node_id());
            // Flat sets (cached flag) contain no nested composites.
            if !s.meta().flat {
                for e in s.iter() {
                    collect_set_keys(e, out);
                }
            }
        }
        Object::Tuple(t) if t.meta().contains_set => {
            for (_, v) in t.entries() {
                collect_set_keys(v, out);
            }
        }
        _ => {}
    }
}

/// A [`Prefilter`] backed by an [`IndexRegistry`].
///
/// Interior mutability (the registry builds indexes lazily during matching)
/// is confined to a reader-writer lock, so one prefilter — and hence one
/// registry of indexes — is shared by all workers of a parallel evaluation
/// round: an index built by any worker serves every later probe of that
/// set value, and probes of *existing* indexes (the steady state after the
/// first iteration) take only the shared lock and run concurrently.
pub struct IndexedPrefilter {
    registry: parking_lot::RwLock<IndexRegistry>,
    policy: MatchPolicy,
}

impl IndexedPrefilter {
    /// Creates a prefilter for the given policy.
    pub fn new(policy: MatchPolicy) -> IndexedPrefilter {
        IndexedPrefilter {
            registry: parking_lot::RwLock::new(IndexRegistry::new()),
            policy,
        }
    }

    /// See [`IndexRegistry::retain_reachable`].
    pub fn retain_reachable(&self, db: &Object) {
        self.registry.write().retain_reachable(db);
    }

    /// Number of materialized indexes (diagnostics).
    pub fn index_count(&self) -> usize {
        self.registry.read().len()
    }
}

/// Probes `index` with the most selective constant/bound-atom constraint
/// of a tuple member formula. Constant atoms probe by reference — no clone
/// on the hot path.
fn probe_best(
    index: &SetIndex,
    entries: &[(Attr, Formula)],
    bindings: &dyn Fn(Var) -> Option<Object>,
    policy: MatchPolicy,
) -> Option<Vec<usize>> {
    let mut best: Option<&[usize]> = None;
    for (a, f) in entries {
        let hits = match f {
            Formula::Atom(atom) => Some(index.probe(*a, atom)),
            Formula::Var(v) if policy == MatchPolicy::Strict => {
                match bindings(*v) {
                    // Only an *atomic* binding pins the element's value:
                    // σX already = that atom, and shrinking to ⊥ prunes
                    // under Strict.
                    Some(Object::Atom(atom)) => Some(index.probe(*a, &atom)),
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(hits) = hits {
            if best.map(|b| hits.len() < b.len()).unwrap_or(true) {
                best = Some(hits);
            }
        }
    }
    best.map(|b| b.to_vec())
}

impl Prefilter for IndexedPrefilter {
    fn candidates(
        &self,
        set: &Set,
        member: &Formula,
        bindings: &dyn Fn(Var) -> Option<Object>,
    ) -> Option<Vec<usize>> {
        let Formula::Tuple(entries) = member else {
            return None;
        };
        // Fast path: shared-lock probe of an already-built index — the
        // steady state once the first iteration has indexed the large
        // sets. Workers of a parallel round run this concurrently.
        {
            let registry = self.registry.read();
            // Early out for small sets *here*, not just inside
            // `existing`: otherwise every probe of a below-threshold set
            // would fall through to the exclusive-lock build path below.
            if set.len() < registry.min_set_len {
                return None;
            }
            if let Some(index) = registry.existing(set) {
                return probe_best(index, entries, bindings, self.policy);
            }
        }
        // Miss: build (or lose the race to another builder — `index_for`
        // re-checks under the exclusive lock) and probe.
        let mut registry = self.registry.write();
        let index = registry.index_for(set)?;
        probe_best(index, entries, bindings, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_calculus::{match_with, matches, wff};
    use co_object::obj;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    fn big_relation(n: i64) -> Object {
        Object::set((0..n).map(|i| {
            Object::tuple([
                (Attr::new("k"), Object::int(i)),
                (Attr::new("v"), Object::int(i % 10)),
            ])
        }))
    }

    #[test]
    fn set_index_probes_exactly() {
        let rel = big_relation(100);
        let idx = SetIndex::build(rel.as_set().unwrap());
        let hits = idx.probe(Attr::new("v"), &Atom::Int(3));
        assert_eq!(hits.len(), 10);
        for &i in hits {
            assert_eq!(
                rel.as_set().unwrap().elements()[i].dot("v"),
                &Object::int(3)
            );
        }
        assert!(idx.probe(Attr::new("v"), &Atom::Int(99)).is_empty());
        assert!(idx.keys() > 0);
    }

    #[test]
    fn columnar_built_index_matches_element_scan() {
        // 200 rows is past the default arena threshold, so this index is
        // built column-major; every probe must still return exactly the
        // element positions a scan would.
        let rel = big_relation(200);
        let set = rel.as_set().unwrap();
        assert!(
            co_object::columnar::arena_for(set).is_some(),
            "expected the arena fast path to be exercised"
        );
        let idx = SetIndex::build(set);
        for attr in [Attr::new("k"), Attr::new("v")] {
            for value in 0..10 {
                let atom = Atom::Int(value);
                let expected: Vec<usize> = set
                    .elements()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.dot(attr) == &Object::Atom(atom.clone()))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(idx.probe(attr, &atom), expected.as_slice());
            }
        }
    }

    #[test]
    fn registry_reuses_indexes_by_node_id() {
        let rel = big_relation(50);
        let set = rel.as_set().unwrap();
        let mut reg = IndexRegistry::new();
        let p1 = reg.index_for(set).unwrap() as *const SetIndex;
        let p2 = reg.index_for(set).unwrap() as *const SetIndex;
        assert_eq!(p1, p2);
        assert_eq!(reg.len(), 1);
        // Clones share the interned node — same index.
        let rel2 = rel.clone();
        reg.index_for(rel2.as_set().unwrap()).unwrap();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_reuses_indexes_across_rederivation() {
        // The same *value* built twice through independent constructor
        // calls (as semi-naive iterations do) interns to one node and
        // therefore hits one index — the robustness the pointer-keyed
        // scheme lacked.
        let mut reg = IndexRegistry::new();
        let rel1 = big_relation(50);
        reg.index_for(rel1.as_set().unwrap()).unwrap();
        let rel2 = big_relation(50);
        assert_eq!(
            rel1.as_set().unwrap().node_id(),
            rel2.as_set().unwrap().node_id()
        );
        reg.index_for(rel2.as_set().unwrap()).unwrap();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn small_sets_are_not_indexed() {
        let rel = big_relation(4);
        let mut reg = IndexRegistry::new();
        assert!(reg.index_for(rel.as_set().unwrap()).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn retain_reachable_evicts_dead_indexes() {
        let rel = big_relation(50);
        let mut reg = IndexRegistry::new();
        reg.index_for(rel.as_set().unwrap()).unwrap();
        assert_eq!(reg.len(), 1);
        let other_db = obj!([r: {1}]);
        reg.retain_reachable(&other_db);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn indexed_matching_agrees_with_scanning() {
        let db = Object::tuple([(Attr::new("r"), big_relation(200))]);
        let f = wff!([r: {[v: 3, k: (x())]}]);
        let scan = matches(&f, &db, MatchPolicy::Strict);
        let pf = IndexedPrefilter::new(MatchPolicy::Strict);
        let (indexed, stats) = match_with(&f, &db, MatchPolicy::Strict, &pf);
        assert_eq!(scan, indexed);
        // The index probe must try far fewer candidates than the scan.
        assert!(
            stats.candidates_tried <= 20,
            "tried {}",
            stats.candidates_tried
        );
    }

    #[test]
    fn indexed_join_with_bound_variable_agrees() {
        let db = Object::tuple([
            (Attr::new("r1"), big_relation(100)),
            (Attr::new("r2"), big_relation(100)),
        ]);
        // Y is bound by the first member before the second is matched.
        let f = wff!([r1: {[k: 5, v: (y())]}, r2: {[v: (y()), k: (x())]}]);
        let scan = matches(&f, &db, MatchPolicy::Strict);
        let pf = IndexedPrefilter::new(MatchPolicy::Strict);
        let (indexed, _) = match_with(&f, &db, MatchPolicy::Strict, &pf);
        assert_eq!(scan, indexed);
        assert!(!indexed.is_empty());
    }

    #[test]
    fn literal_policy_skips_bound_variable_probes() {
        // Under Literal, Y↦⊥ joins must survive: the prefilter may only use
        // constant constraints. Equivalence is the requirement.
        let db = Object::tuple([
            (Attr::new("r1"), big_relation(60)),
            (Attr::new("r2"), big_relation(60)),
        ]);
        let f = wff!([r1: {[k: 5, v: (y())]}, r2: {[v: (y()), k: (x())]}]);
        let scan = matches(&f, &db, MatchPolicy::Literal);
        let pf = IndexedPrefilter::new(MatchPolicy::Literal);
        let (indexed, _) = match_with(&f, &db, MatchPolicy::Literal, &pf);
        assert_eq!(scan, indexed);
    }

    #[test]
    fn non_tuple_members_fall_back_to_scan() {
        let db = Object::tuple([(Attr::new("r"), big_relation(50))]);
        let f = wff!([r: {(x())}]);
        let pf = IndexedPrefilter::new(MatchPolicy::Strict);
        let (indexed, _) = match_with(&f, &db, MatchPolicy::Strict, &pf);
        assert_eq!(indexed.len(), 50);
    }
}

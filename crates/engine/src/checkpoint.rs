//! Engine checkpoint/restore: durable fixpoint state on the `co-wire`
//! snapshot format.
//!
//! A checkpoint captures everything a fresh process needs to continue an
//! evaluation and reach the **same** fixpoint with the **same** trace:
//!
//! - the database object (snapshot root 0), plus one root per top-level
//!   relation (so tooling can load a single relation without decoding the
//!   database wrapper — they share the node table, costing only a root
//!   reference each);
//! - the program, rendered in the concrete syntax (its `Display` form
//!   round-trips through `co_parser::parse_program` — property-tested in
//!   the parser crate);
//! - the semantic configuration: strategy, closure mode, match policy,
//!   index usage, tracing, and the full [`Guard`].
//!
//! Execution choices — [`Parallelism`](crate::Parallelism) and
//! [`GcCadence`](crate::GcCadence) — are deliberately **not** persisted:
//! they never affect results (bit-identical fixpoints and traces are the
//! engine's contract), and the restoring host's core count and memory
//! budget are what should pick them. A restored engine resolves both from
//! the environment, exactly like [`Engine::new`].
//!
//! The database is pinned as a GC root for the duration of the write, so
//! a concurrent or auto-triggered [`co_object::store::collect`] can never
//! free nodes mid-serialization.
//!
//! # Incremental checkpoints
//!
//! Fixpoint databases grow monotonically and mostly slowly: between two
//! checkpoints of a hot engine, the overwhelming share of interned nodes
//! is unchanged. [`Engine::checkpoint`] therefore auto-selects **delta
//! snapshots** once a chain is live: the first call writes a full
//! (version 1) snapshot, later calls write version-2 deltas carrying only
//! the nodes the chain lacks, and [`Engine::restore_chain`] replays the
//! layers — full first, then each delta — verifying every link's base
//! identity (payload checksum + cumulative node count). GC between
//! deltas is safe: the handle maps live `NodeId`s, freed ids are never
//! recycled, and content that is re-derived after a sweep simply
//! re-encodes in the next delta (never silently mis-references). Chains
//! are capped at [`co_wire::MAX_CHAIN_DEPTH`] layers; the auto mode then
//! rolls over into a fresh full snapshot, and [`co_wire::compact_chain`]
//! rewrites an existing chain offline.

use crate::{Engine, Guard, Strategy};
use co_calculus::{ClosureMode, MatchPolicy, Program};
use co_object::{store, Object};
use co_wire::codec::{put_str, put_varint, Cursor};
use co_wire::{SnapshotHandle, WireError, WriteStats};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Version byte of the engine metadata blob inside the snapshot.
const META_VERSION: u8 = 1;

/// Why a checkpoint could not be written, or a snapshot not restored
/// into an engine.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying snapshot write/read failed.
    Wire(WireError),
    /// The snapshot decoded, but its engine metadata is missing or
    /// inconsistent (not an engine checkpoint, or a damaged one).
    Meta {
        /// What was wrong.
        detail: String,
    },
    /// The persisted program text failed to re-parse.
    Program {
        /// The rendered parse error.
        detail: String,
    },
    /// A delta checkpoint targeted a path that is already a layer of its
    /// own base chain: the atomic rename would destroy the base and make
    /// the chain unrestorable.
    LayerClobber {
        /// The colliding path.
        path: PathBuf,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Wire(e) => write!(f, "{e}"),
            CheckpointError::Meta { detail } => {
                write!(f, "invalid engine checkpoint metadata: {detail}")
            }
            CheckpointError::Program { detail } => {
                write!(f, "checkpoint program failed to re-parse: {detail}")
            }
            CheckpointError::LayerClobber { path } => write!(
                f,
                "delta checkpoint would overwrite `{}`, a layer of its own base chain — \
                 write a full checkpoint or pick another path",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Wire(e)
    }
}

/// A successfully restored checkpoint: the reconfigured engine and the
/// database it was evaluating.
#[derive(Clone, Debug)]
pub struct Restored {
    /// An engine with the persisted program and semantic configuration
    /// (parallelism and GC cadence re-resolved from this host's
    /// environment). The restored chain is its live checkpoint handle,
    /// so a further [`Engine::checkpoint`] continues it with a delta.
    pub engine: Engine,
    /// The database object at checkpoint time, re-interned canonically.
    pub database: Object,
}

/// A handle onto a written checkpoint chain: the wire-level base identity
/// plus the on-disk layer paths, in restore order. What
/// [`Engine::checkpoint_delta`] encodes against, and what
/// [`Engine::restore_chain`] needs to reassemble the state.
#[derive(Clone, Debug)]
pub struct CheckpointHandle {
    pub(crate) wire: SnapshotHandle,
    pub(crate) layers: Vec<PathBuf>,
}

impl CheckpointHandle {
    /// The chain's layer files, oldest (the full snapshot) first — the
    /// argument [`Engine::restore_chain`] expects.
    pub fn layers(&self) -> &[PathBuf] {
        &self.layers
    }

    /// How many layers the chain has (1 = a single full snapshot).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The wire-level identity (payload checksum + cumulative node
    /// count) a delta written against this handle will declare.
    pub fn base_id(&self) -> co_wire::BaseId {
        self.wire.base_id()
    }
}

fn strategy_code(s: Strategy) -> u8 {
    match s {
        Strategy::Naive => 0,
        Strategy::SemiNaive => 1,
    }
}

fn mode_code(m: ClosureMode) -> u8 {
    match m {
        ClosureMode::Inflationary => 0,
        ClosureMode::PaperLiteral => 1,
    }
}

fn policy_code(p: MatchPolicy) -> u8 {
    match p {
        MatchPolicy::Strict => 0,
        MatchPolicy::Literal => 1,
    }
}

/// Encodes the engine metadata blob: version, config, guard, program
/// text, and the relation names pairing with snapshot roots `1..`.
fn encode_meta(engine: &Engine, relation_names: &[String]) -> Vec<u8> {
    let mut meta = vec![
        META_VERSION,
        strategy_code(engine.strategy),
        mode_code(engine.mode),
        policy_code(engine.policy),
    ];
    let mut flags = 0u8;
    if engine.use_indexes {
        flags |= 1;
    }
    if engine.tracing {
        flags |= 2;
    }
    meta.push(flags);
    put_varint(&mut meta, engine.guard.max_iterations);
    put_varint(&mut meta, engine.guard.max_size);
    put_varint(&mut meta, engine.guard.max_depth);
    match engine.guard.time_limit {
        None => meta.push(0),
        Some(d) => {
            meta.push(1);
            put_varint(&mut meta, d.as_secs());
            put_varint(&mut meta, u64::from(d.subsec_nanos()));
        }
    }
    put_str(&mut meta, &engine.program.to_string());
    put_varint(&mut meta, relation_names.len() as u64);
    for name in relation_names {
        put_str(&mut meta, name);
    }
    meta
}

/// Whether `target` names one of the chain's layer files: writing a
/// delta there would rename over its own base. Compared canonically when
/// the paths exist (so `./db.cow` and `db.cow` collide); a target that
/// does not exist yet cannot be a live layer.
fn collides_with_chain(target: &Path, layers: &[PathBuf]) -> bool {
    let canonical_target = match std::fs::canonicalize(target) {
        Ok(p) => p,
        // Not on disk (or unreadable): it cannot be a restorable layer,
        // and the raw-equality fallback still catches exact respellings.
        Err(_) => return layers.iter().any(|l| l == target),
    };
    layers
        .iter()
        .any(|l| std::fs::canonicalize(l).map_or(l == target, |c| c == canonical_target))
}

/// Decodes what [`encode_meta`] wrote.
fn decode_meta(meta: &[u8]) -> Result<(Engine, Vec<String>), CheckpointError> {
    let bad = |detail: String| CheckpointError::Meta { detail };
    let mut c = Cursor::new(meta);
    let ctx = "engine metadata";
    let wire = |e: WireError| match e {
        WireError::Truncated { .. } => CheckpointError::Meta {
            detail: "metadata truncated".into(),
        },
        e => CheckpointError::Meta {
            detail: e.to_string(),
        },
    };
    let version = c.u8(ctx).map_err(wire)?;
    if version != META_VERSION {
        return Err(bad(format!(
            "unsupported metadata version {version} (this build reads version {META_VERSION})"
        )));
    }
    let strategy = match c.u8(ctx).map_err(wire)? {
        0 => Strategy::Naive,
        1 => Strategy::SemiNaive,
        other => return Err(bad(format!("unknown strategy code {other}"))),
    };
    let mode = match c.u8(ctx).map_err(wire)? {
        0 => ClosureMode::Inflationary,
        1 => ClosureMode::PaperLiteral,
        other => return Err(bad(format!("unknown closure-mode code {other}"))),
    };
    let policy = match c.u8(ctx).map_err(wire)? {
        0 => MatchPolicy::Strict,
        1 => MatchPolicy::Literal,
        other => return Err(bad(format!("unknown match-policy code {other}"))),
    };
    let flags = c.u8(ctx).map_err(wire)?;
    if flags & !0b11 != 0 {
        return Err(bad(format!("unknown flag bits {flags:#04x}")));
    }
    let guard = Guard {
        max_iterations: c.varint(ctx).map_err(wire)?,
        max_size: c.varint(ctx).map_err(wire)?,
        max_depth: c.varint(ctx).map_err(wire)?,
        time_limit: match c.u8(ctx).map_err(wire)? {
            0 => None,
            1 => {
                let secs = c.varint(ctx).map_err(wire)?;
                let nanos = c.varint(ctx).map_err(wire)?;
                // A valid writer emits subsec nanos < 1e9; anything else
                // is corrupt — and would make `Duration::new` carry past
                // u64::MAX seconds and panic on hostile input.
                let nanos = u32::try_from(nanos)
                    .ok()
                    .filter(|n| *n < 1_000_000_000)
                    .ok_or_else(|| bad(format!("guard time-limit nanos {nanos} out of range")))?;
                Some(Duration::new(secs, nanos))
            }
            other => return Err(bad(format!("unknown time-limit presence byte {other}"))),
        },
    };
    let text = c.str(ctx).map_err(wire)?.to_owned();
    let program = if text.trim().is_empty() {
        Program::new()
    } else {
        co_parser::parse_program(&text).map_err(|e| CheckpointError::Program {
            detail: e.render(&text),
        })?
    };
    let relation_count = c.varint(ctx).map_err(wire)?;
    let mut relation_names = Vec::new();
    for _ in 0..relation_count {
        relation_names.push(c.str(ctx).map_err(wire)?.to_owned());
    }
    if c.remaining() != 0 {
        return Err(bad(format!("{} trailing metadata bytes", c.remaining())));
    }
    let engine = Engine::new(program)
        .strategy(strategy)
        .mode(mode)
        .policy(policy)
        .indexes(flags & 1 != 0)
        .tracing(flags & 2 != 0)
        .guard(guard);
    Ok((engine, relation_names))
}

impl Engine {
    /// Writes a checkpoint of this engine's configuration, program, and
    /// `db` to `path` (atomically — temp file + rename), pinning `db` as
    /// a GC root for the duration of the write.
    ///
    /// The snapshot stores the database as root 0 and each top-level
    /// relation (tuple attribute) as an additional root sharing the same
    /// node table. Restore it — in this process or a fresh one — with
    /// [`Engine::restore`]; the restored engine reaches the same fixpoint
    /// with a bit-identical trace.
    ///
    /// **Full vs delta is automatic.** The first checkpoint an engine
    /// writes is a full (version 1) snapshot. While a prior checkpoint
    /// handle is live ([`Engine::last_checkpoint`]), later calls write
    /// **delta** (version 2) snapshots carrying only the nodes the chain
    /// lacks — restore them together with [`Engine::restore_chain`]. When
    /// the chain reaches [`co_wire::MAX_CHAIN_DEPTH`] layers, the next
    /// call starts a fresh full snapshot — as does a call targeting one
    /// of the live chain's own layer files (a delta there would rename
    /// over its own base), so periodic checkpoints to a single path keep
    /// their always-restorable semantics. Use [`Engine::checkpoint_full`]
    /// / [`Engine::checkpoint_delta`] to pick explicitly.
    ///
    /// ```
    /// use co_engine::Engine;
    /// use co_parser::{parse_object, parse_program};
    ///
    /// let db = parse_object("[edge: {[s: a, t: b], [s: b, t: c]}]").unwrap();
    /// let program = parse_program(
    ///     "[path: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].
    ///      [path: {[s: X, t: Z]}] :- [edge: {[s: X, t: Y]}, path: {[s: Y, t: Z]}].",
    /// )
    /// .unwrap();
    /// let engine = Engine::new(program);
    /// let path = std::env::temp_dir().join(format!("ckpt_doc_{}.cow", std::process::id()));
    ///
    /// engine.checkpoint(&db, &path).unwrap();
    /// let restored = Engine::restore(&path).unwrap();
    /// std::fs::remove_file(&path).unwrap();
    ///
    /// assert_eq!(restored.database, db);
    /// let before = engine.run(&db).unwrap();
    /// let after = restored.engine.run(&restored.database).unwrap();
    /// // Bit-identical continuation: same fixpoint, same interned node.
    /// assert_eq!(before.database, after.database);
    /// assert_eq!(before.database.node_id(), after.database.node_id());
    /// ```
    pub fn checkpoint(
        &self,
        db: &Object,
        path: impl AsRef<Path>,
    ) -> Result<WriteStats, CheckpointError> {
        // Auto-select: continue the live chain with a delta while there
        // is one and it has room; otherwise (first checkpoint, or the
        // chain is at MAX_CHAIN_DEPTH) start fresh with a full snapshot.
        // Writing over one of the live chain's own layers — the PR 4
        // idiom of periodic checkpoints to a single path — also falls
        // back to full: a delta there would atomically destroy its own
        // base.
        let base = self.lock_chain().clone();
        match base {
            Some(h)
                if h.depth() < co_wire::MAX_CHAIN_DEPTH
                    && !collides_with_chain(path.as_ref(), h.layers()) =>
            {
                self.checkpoint_delta(db, path, &h).map(|(stats, _)| stats)
            }
            _ => self.checkpoint_full(db, path),
        }
    }

    /// Writes a **full** (version 1) checkpoint unconditionally, making
    /// it the engine's new live chain of depth 1: the next
    /// [`Engine::checkpoint`] writes a delta against it.
    pub fn checkpoint_full(
        &self,
        db: &Object,
        path: impl AsRef<Path>,
    ) -> Result<WriteStats, CheckpointError> {
        // Pin for the whole write: the writer's own strong references
        // already keep the nodes alive, but the pin also keeps their
        // *ids* stable against a sweep triggered by a concurrent engine
        // (ids are what the node table is keyed off while we walk).
        let _pin = store::pin(db);
        let (roots, meta) = self.checkpoint_roots_meta(db);
        let (stats, wire) = co_wire::save_to_path_handle(path.as_ref(), &roots, &meta)?;
        *self.lock_chain() = Some(CheckpointHandle {
            wire,
            layers: vec![path.as_ref().to_path_buf()],
        });
        Ok(stats)
    }

    /// Writes a **delta** (version 2) checkpoint of `db` to `path`,
    /// encoding only the nodes `base` lacks. Returns the stats and the
    /// extended chain handle, which also becomes the engine's live chain
    /// (so a following [`Engine::checkpoint`] chains another delta).
    ///
    /// Fails with [`WireError::ChainTooDeep`](co_wire::WireError) when
    /// `base` is already at [`co_wire::MAX_CHAIN_DEPTH`] layers — compact
    /// first ([`co_wire::compact_chain`]) or write a full checkpoint.
    pub fn checkpoint_delta(
        &self,
        db: &Object,
        path: impl AsRef<Path>,
        base: &CheckpointHandle,
    ) -> Result<(WriteStats, CheckpointHandle), CheckpointError> {
        if base.depth() >= co_wire::MAX_CHAIN_DEPTH {
            return Err(CheckpointError::Wire(WireError::ChainTooDeep {
                depth: base.depth() + 1,
            }));
        }
        if collides_with_chain(path.as_ref(), base.layers()) {
            return Err(CheckpointError::LayerClobber {
                path: path.as_ref().to_path_buf(),
            });
        }
        let _pin = store::pin(db);
        let (roots, meta) = self.checkpoint_roots_meta(db);
        let (stats, wire) = co_wire::save_delta_to_path(path.as_ref(), &roots, &meta, &base.wire)?;
        let mut layers = base.layers.clone();
        layers.push(path.as_ref().to_path_buf());
        let handle = CheckpointHandle { wire, layers };
        *self.lock_chain() = Some(handle.clone());
        Ok((stats, handle))
    }

    /// Writes a **full** checkpoint of this engine and `db` into any
    /// writer — the transport variant of [`Engine::checkpoint_full`] for
    /// shipping a consistent snapshot over a socket or into a buffer.
    ///
    /// The engine's live chain is deliberately **not** touched: a
    /// writer-targeted snapshot has no on-disk layer path a later delta
    /// could be restored against, so chaining against it would produce
    /// unrestorable [`CheckpointHandle::layers`]. Restore the bytes with
    /// [`co_wire::read_snapshot`] + the ordinary chain entry points, or
    /// persist them and use [`Engine::restore`].
    pub fn checkpoint_full_to<W: std::io::Write>(
        &self,
        db: &Object,
        mut w: W,
    ) -> Result<WriteStats, CheckpointError> {
        // Pin for the whole write, as in `checkpoint_full`: ids are what
        // the node table is keyed off while we walk.
        let _pin = store::pin(db);
        let (roots, meta) = self.checkpoint_roots_meta(db);
        Ok(co_wire::write_snapshot(&mut w, &roots, &meta)?)
    }

    /// The engine's live checkpoint chain: set by
    /// [`Engine::checkpoint`] / [`Engine::checkpoint_full`] /
    /// [`Engine::checkpoint_delta`] and by [`Engine::restore_chain`],
    /// shared across clones. `None` until the first checkpoint.
    pub fn last_checkpoint(&self) -> Option<CheckpointHandle> {
        self.lock_chain().clone()
    }

    /// The database root plus one root per top-level relation, and the
    /// encoded engine metadata naming those relations.
    fn checkpoint_roots_meta(&self, db: &Object) -> (Vec<Object>, Vec<u8>) {
        let mut roots = vec![db.clone()];
        let mut relation_names = Vec::new();
        if let Object::Tuple(t) = db {
            for (attr, value) in t.entries() {
                relation_names.push(attr.name().to_string());
                roots.push(value.clone());
            }
        }
        let meta = encode_meta(self, &relation_names);
        (roots, meta)
    }

    fn lock_chain(&self) -> std::sync::MutexGuard<'_, Option<CheckpointHandle>> {
        self.chain
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Loads a checkpoint written by [`Engine::checkpoint`], returning
    /// the restored engine (program + semantic configuration; parallelism
    /// and GC cadence from this host's environment) and the database.
    ///
    /// The database is re-interned bottom-up through the canonicalizing
    /// constructors, so it deduplicates against whatever this process's
    /// store already holds, and running the restored engine on it
    /// produces a fixpoint and trace bit-identical to what the
    /// checkpointing process would have computed — under any thread
    /// count and GC cadence.
    pub fn restore(path: impl AsRef<Path>) -> Result<Restored, CheckpointError> {
        Engine::restore_chain(&[path])
    }

    /// Loads a checkpoint **chain** — the full snapshot first, then each
    /// delta in write order (see [`CheckpointHandle::layers`]). Every
    /// link's base identity is verified; a wrong or out-of-order base is
    /// a typed [`WireError::BaseMismatch`](co_wire::WireError). The
    /// restored chain becomes the returned engine's live checkpoint
    /// handle, so continuing with [`Engine::checkpoint`] appends deltas
    /// to the same chain.
    pub fn restore_chain(layers: &[impl AsRef<Path>]) -> Result<Restored, CheckpointError> {
        let (snapshot, wire) = co_wire::load_chain(layers)?;
        let (engine, relation_names) = decode_meta(&snapshot.meta)?;
        *engine.lock_chain() = Some(CheckpointHandle {
            wire,
            layers: layers.iter().map(|p| p.as_ref().to_path_buf()).collect(),
        });
        let mut roots = snapshot.roots.into_iter();
        let database = roots.next().ok_or_else(|| CheckpointError::Meta {
            detail: "snapshot has no database root".into(),
        })?;
        // Cross-check the per-relation roots against the database: they
        // must be exactly its top-level attribute values. Catches files
        // whose roots and metadata were spliced from different snapshots.
        if roots.len() != relation_names.len() {
            return Err(CheckpointError::Meta {
                detail: format!(
                    "{} relation roots but {} relation names",
                    roots.len(),
                    relation_names.len()
                ),
            });
        }
        for (name, root) in relation_names.iter().zip(roots) {
            if database.dot(name.as_str()) != &root {
                return Err(CheckpointError::Meta {
                    detail: format!("relation root `{name}` disagrees with the database"),
                });
            }
        }
        Ok(Restored { engine, database })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("co_engine_ckpt_{}_{name}.cow", std::process::id()))
    }

    fn sample_engine() -> Engine {
        let program = co_parser::parse_program(
            "[doa: {abraham}].
             [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
        )
        .unwrap();
        Engine::new(program)
            .strategy(Strategy::SemiNaive)
            .policy(MatchPolicy::Strict)
            .tracing(true)
            .guard(Guard {
                max_iterations: 123,
                max_size: 456,
                max_depth: 78,
                time_limit: Some(Duration::from_millis(1500)),
            })
    }

    fn sample_db() -> Object {
        obj!([family: {
            [name: abraham, children: {[name: isaac]}],
            [name: isaac, children: {[name: esau], [name: jacob]}]
        }, seen: {abraham}])
    }

    #[test]
    fn config_and_program_roundtrip() {
        let path = temp("config");
        let engine = sample_engine();
        let db = sample_db();
        engine.checkpoint(&db, &path).unwrap();
        let restored = Engine::restore(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(restored.database, db);
        assert_eq!(restored.database.node_id(), db.node_id());
        let e = &restored.engine;
        assert_eq!(e.strategy, Strategy::SemiNaive);
        assert_eq!(e.mode, ClosureMode::Inflationary);
        assert_eq!(e.policy, MatchPolicy::Strict);
        assert!(e.use_indexes);
        assert!(e.tracing);
        assert_eq!(e.guard.max_iterations, 123);
        assert_eq!(e.guard.max_size, 456);
        assert_eq!(e.guard.max_depth, 78);
        assert_eq!(e.guard.time_limit, Some(Duration::from_millis(1500)));
        assert_eq!(e.program.to_string(), engine.program.to_string());
    }

    #[test]
    fn per_relation_roots_are_recorded() {
        let path = temp("relations");
        let engine = Engine::new(Program::new());
        let db = sample_db();
        let stats = engine.checkpoint(&db, &path).unwrap();
        // database root + one per top-level relation
        assert_eq!(stats.roots, 3);
        let snap = co_wire::load_from_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&snap.roots[0], &db);
        assert_eq!(&snap.roots[1], db.dot("family"));
        assert_eq!(&snap.roots[2], db.dot("seen"));
    }

    #[test]
    fn empty_program_and_non_tuple_database() {
        let path = temp("atom_db");
        let engine = Engine::new(Program::new());
        let db = obj!({1, 2, 3});
        engine.checkpoint(&db, &path).unwrap();
        let restored = Engine::restore(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(restored.database, db);
        assert!(restored.engine.program.is_empty());
    }

    #[test]
    fn spliced_metadata_is_rejected() {
        // A snapshot whose roots do not match its metadata must not
        // restore silently.
        let path = temp("spliced");
        let db = obj!([r: {1}]);
        let meta = encode_meta(&Engine::new(Program::new()), &["wrong_name".into()]);
        let other = obj!({ 9 });
        co_wire::save_to_path(&path, &[db, other], &meta).unwrap();
        let err = Engine::restore(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(err, CheckpointError::Meta { ref detail }
                if detail.contains("wrong_name")),
            "got: {err}"
        );
    }

    #[test]
    fn hostile_guard_nanos_are_rejected_not_panicking() {
        // secs near u64::MAX with subsec nanos ≥ 1e9 would make
        // `Duration::new` carry past u64::MAX seconds and panic; crafted
        // metadata must surface as a typed error instead.
        let mut meta = vec![META_VERSION, 1, 0, 0, 0b01];
        put_varint(&mut meta, 100); // guard: max_iterations
        put_varint(&mut meta, 100); // max_size
        put_varint(&mut meta, 100); // max_depth
        meta.push(1); // time limit present
        put_varint(&mut meta, u64::MAX); // secs
        put_varint(&mut meta, 1_500_000_000); // nanos ≥ 1e9: invalid
        put_str(&mut meta, ""); // empty program
        put_varint(&mut meta, 0); // no relations
        let err = decode_meta(&meta).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Meta { ref detail }
                if detail.contains("nanos 1500000000 out of range")),
            "got: {err}"
        );
    }

    #[test]
    fn auto_checkpoint_selects_full_then_delta() {
        let dir = std::env::temp_dir().join(format!("co_ckpt_auto_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let engine = sample_engine();
        assert!(engine.last_checkpoint().is_none());

        // First checkpoint: full.
        let db1 = sample_db();
        let s1 = engine.checkpoint(&db1, dir.join("0.cow")).unwrap();
        assert_eq!(s1.version, co_wire::FORMAT_VERSION);
        let h1 = engine.last_checkpoint().unwrap();
        assert_eq!(h1.depth(), 1);

        // Second checkpoint, grown database: auto-delta.
        let db2 = co_object::lattice::union(&db1, &obj!([seen: {isaac}]));
        let s2 = engine.checkpoint(&db2, dir.join("1.cow")).unwrap();
        assert_eq!(s2.version, co_wire::FORMAT_VERSION_DELTA);
        assert!(
            s2.nodes < s1.nodes,
            "delta {} < full {}",
            s2.nodes,
            s1.nodes
        );
        let h2 = engine.last_checkpoint().unwrap();
        assert_eq!(h2.depth(), 2);
        assert_eq!(h2.layers()[0], dir.join("0.cow"));
        assert_eq!(h2.layers()[1], dir.join("1.cow"));

        // The inspector agrees about what landed on disk.
        let info = co_wire::describe(dir.join("1.cow")).unwrap();
        assert!(info.is_delta());
        assert_eq!(info.base.unwrap(), h1.base_id());

        // Chain restore: the final database, engine config, and a live
        // handle for continuing the chain.
        let restored = Engine::restore_chain(h2.layers()).unwrap();
        assert_eq!(restored.database, db2);
        assert_eq!(restored.database.node_id(), db2.node_id());
        assert_eq!(restored.engine.guard.max_iterations, 123);
        let h3 = restored.engine.last_checkpoint().unwrap();
        assert_eq!(h3.depth(), 2);
        assert_eq!(h3.base_id(), h2.base_id());

        // …and the continued chain restores too.
        let db3 = co_object::lattice::union(&db2, &obj!([seen: {esau}]));
        let (s3, h4) = restored
            .engine
            .checkpoint_delta(&db3, dir.join("2.cow"), &h3)
            .unwrap();
        assert_eq!(s3.version, co_wire::FORMAT_VERSION_DELTA);
        let restored2 = Engine::restore_chain(h4.layers()).unwrap();
        assert_eq!(restored2.database, db3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_full_restarts_the_chain_and_the_cap_rolls_over() {
        let dir = std::env::temp_dir().join(format!("co_ckpt_cap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(Program::new());
        let mut db = obj!({ 0 });
        engine.checkpoint(&db, dir.join("full0.cow")).unwrap();

        // Drive the auto chain to the cap.
        for i in 1..co_wire::MAX_CHAIN_DEPTH as i64 {
            db = co_object::lattice::union(&db, &Object::set([Object::int(i)]));
            let stats = engine
                .checkpoint(&db, dir.join(format!("d{i}.cow")))
                .unwrap();
            assert_eq!(stats.version, co_wire::FORMAT_VERSION_DELTA);
        }
        let full_chain = engine.last_checkpoint().unwrap();
        assert_eq!(full_chain.depth(), co_wire::MAX_CHAIN_DEPTH);

        // At the cap, auto mode rolls over to a fresh full snapshot…
        let stats = engine.checkpoint(&db, dir.join("rollover.cow")).unwrap();
        assert_eq!(stats.version, co_wire::FORMAT_VERSION);
        assert_eq!(engine.last_checkpoint().unwrap().depth(), 1);

        // …and the explicit delta API refuses to exceed it.
        let err = engine
            .checkpoint_delta(&db, dir.join("too_deep.cow"), &full_chain)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Wire(WireError::ChainTooDeep { depth })
                    if depth == co_wire::MAX_CHAIN_DEPTH + 1
            ),
            "got: {err}"
        );

        // checkpoint_full always restarts, even mid-chain.
        engine.checkpoint(&db, dir.join("d_again.cow")).unwrap();
        assert_eq!(engine.last_checkpoint().unwrap().depth(), 2);
        let stats = engine.checkpoint_full(&db, dir.join("full1.cow")).unwrap();
        assert_eq!(stats.version, co_wire::FORMAT_VERSION);
        assert_eq!(engine.last_checkpoint().unwrap().depth(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointing_over_a_live_chain_layer_never_destroys_the_base() {
        // The PR 4 idiom: periodic checkpoints to ONE path. With a live
        // chain handle the auto API must not delta over its own base —
        // every overwrite of a layer falls back to a fresh full
        // snapshot, and the file stays restorable throughout.
        let dir = std::env::temp_dir().join(format!("co_ckpt_clobber_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(Program::new());
        let path = dir.join("db.cow");
        let mut db = obj!({ 0 });
        for i in 1..=3i64 {
            db = co_object::lattice::union(&db, &Object::set([Object::int(i)]));
            let stats = engine.checkpoint(&db, &path).unwrap();
            assert_eq!(
                stats.version,
                co_wire::FORMAT_VERSION,
                "overwrite #{i} must be full"
            );
            let restored = Engine::restore(&path).unwrap();
            assert_eq!(restored.database, db);
        }

        // Same idiom after a restore (which arms the chain handle).
        let restored = Engine::restore(&path).unwrap();
        let stats = restored.engine.checkpoint(&db, &path).unwrap();
        assert_eq!(stats.version, co_wire::FORMAT_VERSION);
        assert!(Engine::restore(&path).is_ok());

        // A *different* path still deltas — and respelling a layer path
        // through `./` is caught canonically by the explicit API.
        let stats = restored.engine.checkpoint(&db, dir.join("d.cow")).unwrap();
        assert_eq!(stats.version, co_wire::FORMAT_VERSION_DELTA);
        let handle = restored.engine.last_checkpoint().unwrap();
        let respelled = dir.join(".").join("d.cow");
        let err = restored
            .engine
            .checkpoint_delta(&db, &respelled, &handle)
            .unwrap_err();
        assert!(
            matches!(err, CheckpointError::LayerClobber { .. }),
            "got: {err}"
        );
        assert_eq!(
            err.to_string(),
            format!(
                "delta checkpoint would overwrite `{}`, a layer of its own base chain — \
                 write a full checkpoint or pick another path",
                respelled.display()
            )
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restoring_a_delta_without_its_base_is_typed() {
        let dir = std::env::temp_dir().join(format!("co_ckpt_nobase_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let engine = Engine::new(Program::new());
        let db = obj!({1, 2});
        engine.checkpoint(&db, dir.join("0.cow")).unwrap();
        let db2 = obj!({1, 2, 3});
        engine.checkpoint(&db2, dir.join("1.cow")).unwrap();
        let err = Engine::restore(dir.join("1.cow")).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Wire(WireError::BaseRequired { .. })),
            "got: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_checkpoint_snapshot_is_rejected() {
        let path = temp("bare");
        co_wire::save_to_path(&path, &[obj!({ 1 })], b"").unwrap();
        let err = Engine::restore(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, CheckpointError::Meta { .. }), "got: {err}");
    }
}

//! Engine checkpoint/restore: durable fixpoint state on the `co-wire`
//! snapshot format.
//!
//! A checkpoint captures everything a fresh process needs to continue an
//! evaluation and reach the **same** fixpoint with the **same** trace:
//!
//! - the database object (snapshot root 0), plus one root per top-level
//!   relation (so tooling can load a single relation without decoding the
//!   database wrapper — they share the node table, costing only a root
//!   reference each);
//! - the program, rendered in the concrete syntax (its `Display` form
//!   round-trips through `co_parser::parse_program` — property-tested in
//!   the parser crate);
//! - the semantic configuration: strategy, closure mode, match policy,
//!   index usage, tracing, and the full [`Guard`].
//!
//! Execution choices — [`Parallelism`](crate::Parallelism) and
//! [`GcCadence`](crate::GcCadence) — are deliberately **not** persisted:
//! they never affect results (bit-identical fixpoints and traces are the
//! engine's contract), and the restoring host's core count and memory
//! budget are what should pick them. A restored engine resolves both from
//! the environment, exactly like [`Engine::new`].
//!
//! The database is pinned as a GC root for the duration of the write, so
//! a concurrent or auto-triggered [`co_object::store::collect`] can never
//! free nodes mid-serialization.

use crate::{Engine, Guard, Strategy};
use co_calculus::{ClosureMode, MatchPolicy, Program};
use co_object::{store, Object};
use co_wire::codec::{put_str, put_varint, Cursor};
use co_wire::{WireError, WriteStats};
use std::path::Path;
use std::time::Duration;

/// Version byte of the engine metadata blob inside the snapshot.
const META_VERSION: u8 = 1;

/// Why a checkpoint could not be written, or a snapshot not restored
/// into an engine.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying snapshot write/read failed.
    Wire(WireError),
    /// The snapshot decoded, but its engine metadata is missing or
    /// inconsistent (not an engine checkpoint, or a damaged one).
    Meta {
        /// What was wrong.
        detail: String,
    },
    /// The persisted program text failed to re-parse.
    Program {
        /// The rendered parse error.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Wire(e) => write!(f, "{e}"),
            CheckpointError::Meta { detail } => {
                write!(f, "invalid engine checkpoint metadata: {detail}")
            }
            CheckpointError::Program { detail } => {
                write!(f, "checkpoint program failed to re-parse: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Wire(e)
    }
}

/// A successfully restored checkpoint: the reconfigured engine and the
/// database it was evaluating.
#[derive(Clone, Debug)]
pub struct Restored {
    /// An engine with the persisted program and semantic configuration
    /// (parallelism and GC cadence re-resolved from this host's
    /// environment).
    pub engine: Engine,
    /// The database object at checkpoint time, re-interned canonically.
    pub database: Object,
}

fn strategy_code(s: Strategy) -> u8 {
    match s {
        Strategy::Naive => 0,
        Strategy::SemiNaive => 1,
    }
}

fn mode_code(m: ClosureMode) -> u8 {
    match m {
        ClosureMode::Inflationary => 0,
        ClosureMode::PaperLiteral => 1,
    }
}

fn policy_code(p: MatchPolicy) -> u8 {
    match p {
        MatchPolicy::Strict => 0,
        MatchPolicy::Literal => 1,
    }
}

/// Encodes the engine metadata blob: version, config, guard, program
/// text, and the relation names pairing with snapshot roots `1..`.
fn encode_meta(engine: &Engine, relation_names: &[String]) -> Vec<u8> {
    let mut meta = vec![
        META_VERSION,
        strategy_code(engine.strategy),
        mode_code(engine.mode),
        policy_code(engine.policy),
    ];
    let mut flags = 0u8;
    if engine.use_indexes {
        flags |= 1;
    }
    if engine.tracing {
        flags |= 2;
    }
    meta.push(flags);
    put_varint(&mut meta, engine.guard.max_iterations);
    put_varint(&mut meta, engine.guard.max_size);
    put_varint(&mut meta, engine.guard.max_depth);
    match engine.guard.time_limit {
        None => meta.push(0),
        Some(d) => {
            meta.push(1);
            put_varint(&mut meta, d.as_secs());
            put_varint(&mut meta, u64::from(d.subsec_nanos()));
        }
    }
    put_str(&mut meta, &engine.program.to_string());
    put_varint(&mut meta, relation_names.len() as u64);
    for name in relation_names {
        put_str(&mut meta, name);
    }
    meta
}

/// Decodes what [`encode_meta`] wrote.
fn decode_meta(meta: &[u8]) -> Result<(Engine, Vec<String>), CheckpointError> {
    let bad = |detail: String| CheckpointError::Meta { detail };
    let mut c = Cursor::new(meta);
    let ctx = "engine metadata";
    let wire = |e: WireError| match e {
        WireError::Truncated { .. } => CheckpointError::Meta {
            detail: "metadata truncated".into(),
        },
        e => CheckpointError::Meta {
            detail: e.to_string(),
        },
    };
    let version = c.u8(ctx).map_err(wire)?;
    if version != META_VERSION {
        return Err(bad(format!(
            "unsupported metadata version {version} (this build reads version {META_VERSION})"
        )));
    }
    let strategy = match c.u8(ctx).map_err(wire)? {
        0 => Strategy::Naive,
        1 => Strategy::SemiNaive,
        other => return Err(bad(format!("unknown strategy code {other}"))),
    };
    let mode = match c.u8(ctx).map_err(wire)? {
        0 => ClosureMode::Inflationary,
        1 => ClosureMode::PaperLiteral,
        other => return Err(bad(format!("unknown closure-mode code {other}"))),
    };
    let policy = match c.u8(ctx).map_err(wire)? {
        0 => MatchPolicy::Strict,
        1 => MatchPolicy::Literal,
        other => return Err(bad(format!("unknown match-policy code {other}"))),
    };
    let flags = c.u8(ctx).map_err(wire)?;
    if flags & !0b11 != 0 {
        return Err(bad(format!("unknown flag bits {flags:#04x}")));
    }
    let guard = Guard {
        max_iterations: c.varint(ctx).map_err(wire)?,
        max_size: c.varint(ctx).map_err(wire)?,
        max_depth: c.varint(ctx).map_err(wire)?,
        time_limit: match c.u8(ctx).map_err(wire)? {
            0 => None,
            1 => {
                let secs = c.varint(ctx).map_err(wire)?;
                let nanos = c.varint(ctx).map_err(wire)?;
                // A valid writer emits subsec nanos < 1e9; anything else
                // is corrupt — and would make `Duration::new` carry past
                // u64::MAX seconds and panic on hostile input.
                let nanos = u32::try_from(nanos)
                    .ok()
                    .filter(|n| *n < 1_000_000_000)
                    .ok_or_else(|| bad(format!("guard time-limit nanos {nanos} out of range")))?;
                Some(Duration::new(secs, nanos))
            }
            other => return Err(bad(format!("unknown time-limit presence byte {other}"))),
        },
    };
    let text = c.str(ctx).map_err(wire)?.to_owned();
    let program = if text.trim().is_empty() {
        Program::new()
    } else {
        co_parser::parse_program(&text).map_err(|e| CheckpointError::Program {
            detail: e.render(&text),
        })?
    };
    let relation_count = c.varint(ctx).map_err(wire)?;
    let mut relation_names = Vec::new();
    for _ in 0..relation_count {
        relation_names.push(c.str(ctx).map_err(wire)?.to_owned());
    }
    if c.remaining() != 0 {
        return Err(bad(format!("{} trailing metadata bytes", c.remaining())));
    }
    let engine = Engine::new(program)
        .strategy(strategy)
        .mode(mode)
        .policy(policy)
        .indexes(flags & 1 != 0)
        .tracing(flags & 2 != 0)
        .guard(guard);
    Ok((engine, relation_names))
}

impl Engine {
    /// Writes a checkpoint of this engine's configuration, program, and
    /// `db` to `path` (atomically — temp file + rename), pinning `db` as
    /// a GC root for the duration of the write.
    ///
    /// The snapshot stores the database as root 0 and each top-level
    /// relation (tuple attribute) as an additional root sharing the same
    /// node table. Restore it — in this process or a fresh one — with
    /// [`Engine::restore`]; the restored engine reaches the same fixpoint
    /// with a bit-identical trace.
    ///
    /// ```
    /// use co_engine::Engine;
    /// use co_parser::{parse_object, parse_program};
    ///
    /// let db = parse_object("[edge: {[s: a, t: b], [s: b, t: c]}]").unwrap();
    /// let program = parse_program(
    ///     "[path: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].
    ///      [path: {[s: X, t: Z]}] :- [edge: {[s: X, t: Y]}, path: {[s: Y, t: Z]}].",
    /// )
    /// .unwrap();
    /// let engine = Engine::new(program);
    /// let path = std::env::temp_dir().join(format!("ckpt_doc_{}.cow", std::process::id()));
    ///
    /// engine.checkpoint(&db, &path).unwrap();
    /// let restored = Engine::restore(&path).unwrap();
    /// std::fs::remove_file(&path).unwrap();
    ///
    /// assert_eq!(restored.database, db);
    /// let before = engine.run(&db).unwrap();
    /// let after = restored.engine.run(&restored.database).unwrap();
    /// // Bit-identical continuation: same fixpoint, same interned node.
    /// assert_eq!(before.database, after.database);
    /// assert_eq!(before.database.node_id(), after.database.node_id());
    /// ```
    pub fn checkpoint(
        &self,
        db: &Object,
        path: impl AsRef<Path>,
    ) -> Result<WriteStats, CheckpointError> {
        // Pin for the whole write: the writer's own strong references
        // already keep the nodes alive, but the pin also keeps their
        // *ids* stable against a sweep triggered by a concurrent engine
        // (ids are what the node table is keyed off while we walk).
        let _pin = store::pin(db);
        let mut roots = vec![db.clone()];
        let mut relation_names = Vec::new();
        if let Object::Tuple(t) = db {
            for (attr, value) in t.entries() {
                relation_names.push(attr.name().to_string());
                roots.push(value.clone());
            }
        }
        let meta = encode_meta(self, &relation_names);
        Ok(co_wire::save_to_path(path, &roots, &meta)?)
    }

    /// Loads a checkpoint written by [`Engine::checkpoint`], returning
    /// the restored engine (program + semantic configuration; parallelism
    /// and GC cadence from this host's environment) and the database.
    ///
    /// The database is re-interned bottom-up through the canonicalizing
    /// constructors, so it deduplicates against whatever this process's
    /// store already holds, and running the restored engine on it
    /// produces a fixpoint and trace bit-identical to what the
    /// checkpointing process would have computed — under any thread
    /// count and GC cadence.
    pub fn restore(path: impl AsRef<Path>) -> Result<Restored, CheckpointError> {
        let snapshot = co_wire::load_from_path(path)?;
        let (engine, relation_names) = decode_meta(&snapshot.meta)?;
        let mut roots = snapshot.roots.into_iter();
        let database = roots.next().ok_or_else(|| CheckpointError::Meta {
            detail: "snapshot has no database root".into(),
        })?;
        // Cross-check the per-relation roots against the database: they
        // must be exactly its top-level attribute values. Catches files
        // whose roots and metadata were spliced from different snapshots.
        if roots.len() != relation_names.len() {
            return Err(CheckpointError::Meta {
                detail: format!(
                    "{} relation roots but {} relation names",
                    roots.len(),
                    relation_names.len()
                ),
            });
        }
        for (name, root) in relation_names.iter().zip(roots) {
            if database.dot(name.as_str()) != &root {
                return Err(CheckpointError::Meta {
                    detail: format!("relation root `{name}` disagrees with the database"),
                });
            }
        }
        Ok(Restored { engine, database })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("co_engine_ckpt_{}_{name}.cow", std::process::id()))
    }

    fn sample_engine() -> Engine {
        let program = co_parser::parse_program(
            "[doa: {abraham}].
             [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
        )
        .unwrap();
        Engine::new(program)
            .strategy(Strategy::SemiNaive)
            .policy(MatchPolicy::Strict)
            .tracing(true)
            .guard(Guard {
                max_iterations: 123,
                max_size: 456,
                max_depth: 78,
                time_limit: Some(Duration::from_millis(1500)),
            })
    }

    fn sample_db() -> Object {
        obj!([family: {
            [name: abraham, children: {[name: isaac]}],
            [name: isaac, children: {[name: esau], [name: jacob]}]
        }, seen: {abraham}])
    }

    #[test]
    fn config_and_program_roundtrip() {
        let path = temp("config");
        let engine = sample_engine();
        let db = sample_db();
        engine.checkpoint(&db, &path).unwrap();
        let restored = Engine::restore(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(restored.database, db);
        assert_eq!(restored.database.node_id(), db.node_id());
        let e = &restored.engine;
        assert_eq!(e.strategy, Strategy::SemiNaive);
        assert_eq!(e.mode, ClosureMode::Inflationary);
        assert_eq!(e.policy, MatchPolicy::Strict);
        assert!(e.use_indexes);
        assert!(e.tracing);
        assert_eq!(e.guard.max_iterations, 123);
        assert_eq!(e.guard.max_size, 456);
        assert_eq!(e.guard.max_depth, 78);
        assert_eq!(e.guard.time_limit, Some(Duration::from_millis(1500)));
        assert_eq!(e.program.to_string(), engine.program.to_string());
    }

    #[test]
    fn per_relation_roots_are_recorded() {
        let path = temp("relations");
        let engine = Engine::new(Program::new());
        let db = sample_db();
        let stats = engine.checkpoint(&db, &path).unwrap();
        // database root + one per top-level relation
        assert_eq!(stats.roots, 3);
        let snap = co_wire::load_from_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&snap.roots[0], &db);
        assert_eq!(&snap.roots[1], db.dot("family"));
        assert_eq!(&snap.roots[2], db.dot("seen"));
    }

    #[test]
    fn empty_program_and_non_tuple_database() {
        let path = temp("atom_db");
        let engine = Engine::new(Program::new());
        let db = obj!({1, 2, 3});
        engine.checkpoint(&db, &path).unwrap();
        let restored = Engine::restore(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(restored.database, db);
        assert!(restored.engine.program.is_empty());
    }

    #[test]
    fn spliced_metadata_is_rejected() {
        // A snapshot whose roots do not match its metadata must not
        // restore silently.
        let path = temp("spliced");
        let db = obj!([r: {1}]);
        let meta = encode_meta(&Engine::new(Program::new()), &["wrong_name".into()]);
        let other = obj!({ 9 });
        co_wire::save_to_path(&path, &[db, other], &meta).unwrap();
        let err = Engine::restore(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(err, CheckpointError::Meta { ref detail }
                if detail.contains("wrong_name")),
            "got: {err}"
        );
    }

    #[test]
    fn hostile_guard_nanos_are_rejected_not_panicking() {
        // secs near u64::MAX with subsec nanos ≥ 1e9 would make
        // `Duration::new` carry past u64::MAX seconds and panic; crafted
        // metadata must surface as a typed error instead.
        let mut meta = vec![META_VERSION, 1, 0, 0, 0b01];
        put_varint(&mut meta, 100); // guard: max_iterations
        put_varint(&mut meta, 100); // max_size
        put_varint(&mut meta, 100); // max_depth
        meta.push(1); // time limit present
        put_varint(&mut meta, u64::MAX); // secs
        put_varint(&mut meta, 1_500_000_000); // nanos ≥ 1e9: invalid
        put_str(&mut meta, ""); // empty program
        put_varint(&mut meta, 0); // no relations
        let err = decode_meta(&meta).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Meta { ref detail }
                if detail.contains("nanos 1500000000 out of range")),
            "got: {err}"
        );
    }

    #[test]
    fn non_checkpoint_snapshot_is_rejected() {
        let path = temp("bare");
        co_wire::save_to_path(&path, &[obj!({ 1 })], b"").unwrap();
        let err = Engine::restore(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, CheckpointError::Meta { .. }), "got: {err}");
    }
}

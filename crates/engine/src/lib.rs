//! # co-engine — fixpoint evaluation for the complex-object calculus
//!
//! Production-grade evaluation of rule programs (paper Section 4) on top of
//! the reference semantics in `co-calculus`:
//!
//! - [`Engine`] — configurable fixpoint runner (builder API);
//! - [`Strategy::SemiNaive`] — delta-driven evaluation: after each
//!   iteration the engine diffs the old and new database states into a
//!   [`delta::Delta`] tree and re-derives only substitutions whose
//!   derivations touch changed regions (see `dmatch`);
//! - [`index`] — attribute-value indexes over large set objects, plugged
//!   into the matcher through the `Prefilter` hook and reused across
//!   iterations via `Arc` identity;
//! - [`Guard`] — iteration/size/depth/time limits that turn the paper's
//!   Example 4.6 divergence into a clean [`EngineError::Diverged`];
//! - [`EvalStats`] / [`Trace`] — observability;
//! - [`Engine::checkpoint`] / [`Engine::restore`] — durable snapshots of
//!   the database + program + configuration on the `co-wire` format: a
//!   restored engine (same process or a fresh one) reaches the same
//!   fixpoint with a bit-identical trace.
//!
//! The engine is differentially tested against the reference
//! `co_calculus::closure` on randomized programs
//! (`tests/engine_equivalence.rs` at the workspace root).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod checkpoint;
pub mod delta;
pub mod dmatch;
mod engine;
mod error;
mod guard;
pub mod incremental;
pub mod index;
pub mod shared;
mod stats;
mod trace;

pub use checkpoint::{CheckpointError, CheckpointHandle, Restored};
pub use co_calculus::{ClosureMode, MatchPolicy};
pub use engine::{
    Engine, GcCadence, Parallelism, RunOutcome, Strategy, SMALL_DELTA_FANOUT_THRESHOLD,
};
pub use error::EngineError;
pub use guard::Guard;
pub use incremental::Materialized;
pub use shared::{AdvanceOutcome, PinnedDb, SharedEngine};
pub use stats::EvalStats;
pub use trace::{Trace, TraceEvent};

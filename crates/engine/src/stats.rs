//! Evaluation statistics.

use co_calculus::MatchStats;
use std::fmt;
use std::time::Duration;

/// Statistics of one fixpoint run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Applications of the rule set `R` (iterations), including the one
    /// that confirmed the fixpoint.
    pub iterations: u64,
    /// Individual rule applications (`iterations × |R|` unless short-cut).
    pub rule_applications: u64,
    /// Matching work units dispatched: one per rule per iteration when
    /// sequential; one per rule × partition when parallel (see
    /// `Engine::parallelism`).
    pub work_units: u64,
    /// Matcher statistics accumulated over the run.
    pub matching: MatchStats,
    /// Store garbage collections run by the engine (see
    /// `Engine::gc_cadence`).
    pub gc_sweeps: u64,
    /// Interned nodes those collections freed.
    pub gc_freed_nodes: u64,
    /// Rounds where `Parallelism::Auto` skipped the thread-pool fan-out
    /// because the delta carried too few new marks to pay for dispatch
    /// (see `Engine::run`).
    pub fanout_skipped_rounds: u64,
    /// Database size (nodes) after each iteration.
    pub sizes: Vec<u64>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl EvalStats {
    /// Final database size, when at least one iteration ran.
    pub fn final_size(&self) -> Option<u64> {
        self.sizes.last().copied()
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations, {} rule applications, {} work units, \
             {} candidates tried, {} matches, final size {}, {:?}",
            self.iterations,
            self.rule_applications,
            self.work_units,
            self.matching.candidates_tried,
            self.matching.matches,
            self.final_size().unwrap_or(0),
            self.elapsed,
        )?;
        if self.gc_sweeps > 0 {
            write!(
                f,
                ", {} gc sweeps freeing {} nodes",
                self.gc_sweeps, self.gc_freed_nodes
            )?;
        }
        if self.fanout_skipped_rounds > 0 {
            write!(
                f,
                ", {} tiny-delta rounds kept sequential",
                self.fanout_skipped_rounds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_size_tracks_last_iteration() {
        let mut s = EvalStats::default();
        assert_eq!(s.final_size(), None);
        s.sizes = vec![10, 20, 25];
        assert_eq!(s.final_size(), Some(25));
    }

    #[test]
    fn display_is_informative() {
        let s = EvalStats {
            iterations: 3,
            rule_applications: 6,
            sizes: vec![5, 9],
            ..EvalStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("3 iterations"));
        assert!(text.contains("final size 9"));
    }
}

//! The fixpoint engine: orchestrates strategy, policy, indexes, guards,
//! statistics, and tracing around the calculus semantics.

use crate::delta::{diff, Delta};
use crate::dmatch::delta_match;
use crate::index::IndexedPrefilter;
use crate::{EngineError, EvalStats, Guard, Trace, TraceEvent};
use co_calculus::{match_with, ClosureMode, MatchPolicy, MatchStats, Prefilter, Program, ScanAll};
use co_object::lattice::{union, union_many};
use co_object::{measure, Object};
use std::time::Instant;

/// Fixpoint iteration strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Re-match every rule body against the whole database each iteration.
    Naive,
    /// Match against the delta of the previous iteration (plus the full
    /// database on the first one). Requires [`ClosureMode::Inflationary`];
    /// the engine falls back to naive under `PaperLiteral`.
    #[default]
    SemiNaive,
}

/// The result of a successful run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The closed database (for `Inflationary`, the minimal closed object
    /// above the input).
    pub database: Object,
    /// Run statistics.
    pub stats: EvalStats,
    /// The execution trace, when tracing was enabled.
    pub trace: Option<Trace>,
}

/// A configured fixpoint engine.
///
/// ```
/// use co_engine::Engine;
/// use co_parser::{parse_object, parse_program};
///
/// let db = parse_object(
///     "[family: {[name: abraham, children: {[name: isaac]}],
///                [name: isaac,   children: {[name: esau], [name: jacob]}]}]",
/// )
/// .unwrap();
/// let program = parse_program(
///     "[doa: {abraham}].
///      [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
/// )
/// .unwrap();
/// let out = Engine::new(program).run(&db).unwrap();
/// assert_eq!(
///     out.database.at_path(&["doa"]).unwrap(),
///     &parse_object("{abraham, isaac, esau, jacob}").unwrap()
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    program: Program,
    strategy: Strategy,
    mode: ClosureMode,
    policy: MatchPolicy,
    guard: Guard,
    use_indexes: bool,
    tracing: bool,
}

impl Engine {
    /// Creates an engine with the default configuration: semi-naive,
    /// inflationary, strict matching, indexes on, default guard, no trace.
    pub fn new(program: Program) -> Engine {
        Engine {
            program,
            strategy: Strategy::default(),
            mode: ClosureMode::default(),
            policy: MatchPolicy::default(),
            guard: Guard::default(),
            use_indexes: true,
            tracing: false,
        }
    }

    /// Selects the iteration strategy.
    pub fn strategy(mut self, s: Strategy) -> Engine {
        self.strategy = s;
        self
    }

    /// Selects the closure mode (see `co_calculus::ClosureMode`).
    pub fn mode(mut self, m: ClosureMode) -> Engine {
        self.mode = m;
        self
    }

    /// Selects the match policy (see `co_calculus::MatchPolicy`).
    pub fn policy(mut self, p: MatchPolicy) -> Engine {
        self.policy = p;
        self
    }

    /// Installs a resource guard.
    pub fn guard(mut self, g: Guard) -> Engine {
        self.guard = g;
        self
    }

    /// Enables or disables attribute-value indexes.
    pub fn indexes(mut self, on: bool) -> Engine {
        self.use_indexes = on;
        self
    }

    /// Enables or disables tracing.
    pub fn tracing(mut self, on: bool) -> Engine {
        self.tracing = on;
        self
    }

    /// The effective strategy: semi-naive needs monotone growth, which only
    /// the inflationary mode guarantees.
    fn effective_strategy(&self) -> Strategy {
        match (self.strategy, self.mode) {
            (Strategy::SemiNaive, ClosureMode::PaperLiteral) => Strategy::Naive,
            (s, _) => s,
        }
    }

    /// Runs the engine to the closure of `db` under the program.
    pub fn run(&self, db: &Object) -> Result<RunOutcome, EngineError> {
        let start = Instant::now();
        let strategy = self.effective_strategy();
        let indexed = IndexedPrefilter::new(self.policy);
        let scan = ScanAll;
        let prefilter: &dyn Prefilter = if self.use_indexes { &indexed } else { &scan };

        let mut stats = EvalStats::default();
        let mut trace = if self.tracing {
            Some(Trace::new())
        } else {
            None
        };
        let mut current = db.clone();
        let mut delta: Option<Delta> = None; // None = first iteration.

        loop {
            let iteration = stats.iterations + 1;
            if iteration > self.guard.max_iterations {
                return Err(self.diverged(
                    format!(
                        "no fixpoint within {} iterations",
                        self.guard.max_iterations
                    ),
                    current,
                    stats,
                    start,
                ));
            }
            if let Some(reason) = self.guard.check_time(start.elapsed()) {
                return Err(self.diverged(reason, current, stats, start));
            }
            if let Some(t) = trace.as_mut() {
                t.record(TraceEvent::IterationStart { iteration });
            }

            // Apply every rule, collecting head contributions; union them
            // in one bulk pass (quadratic-accumulation matters at scale).
            let mut contributions: Vec<Object> = Vec::new();
            for (rule_index, rule) in self.program.rules().iter().enumerate() {
                let (substs, mstats): (Vec<_>, MatchStats) = match (strategy, &delta) {
                    (Strategy::SemiNaive, Some(d)) => {
                        delta_match(rule.body(), &current, d, self.policy, prefilter)
                    }
                    _ => match_with(rule.body(), &current, self.policy, prefilter),
                };
                stats.rule_applications += 1;
                stats.matching.merge(mstats);
                for s in &substs {
                    let contribution = rule.head().instantiate(s);
                    if let Some(t) = trace.as_mut() {
                        t.record(TraceEvent::RuleFired {
                            iteration,
                            rule_index,
                            substitution: s.clone(),
                            contribution: contribution.clone(),
                        });
                    }
                    contributions.push(contribution);
                }
            }
            let applied = union_many(contributions);

            let next = match self.mode {
                ClosureMode::Inflationary => union(&current, &applied),
                ClosureMode::PaperLiteral => applied,
            };
            let changed = next != current;
            let size = measure::size(&next);
            stats.iterations = iteration;
            stats.sizes.push(size);
            if let Some(t) = trace.as_mut() {
                t.record(TraceEvent::IterationEnd {
                    iteration,
                    size,
                    changed,
                });
            }

            if !changed {
                stats.elapsed = start.elapsed();
                return Ok(RunOutcome {
                    database: current,
                    stats,
                    trace,
                });
            }
            if let Some(reason) = self.guard.check_database(&next) {
                return Err(self.diverged(reason, next, stats, start));
            }

            if strategy == Strategy::SemiNaive {
                delta = Some(diff(&current, &next));
            }
            if self.use_indexes {
                indexed.retain_reachable(&next);
            }
            current = next;
        }
    }

    fn diverged(
        &self,
        reason: String,
        partial: Object,
        mut stats: EvalStats,
        start: Instant,
    ) -> EngineError {
        stats.elapsed = start.elapsed();
        EngineError::Diverged {
            reason,
            partial: Box::new(partial),
            stats: Box::new(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_calculus::{wff, Rule, Var};
    use co_object::obj;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    fn genealogy_db() -> Object {
        obj!([family: {
            [name: abraham, children: {[name: isaac]}],
            [name: isaac, children: {[name: esau], [name: jacob]}],
            [name: jacob, children: {[name: joseph], [name: judah]}]
        }])
    }

    fn descendants_program() -> Program {
        Program::from_rules([
            Rule::fact(wff!([doa: {abraham}])).unwrap(),
            Rule::new(
                wff!([doa: {(x())}]),
                wff!([family: {[name: (y()), children: {[name: (x())]}]}, doa: {(y())}]),
            )
            .unwrap(),
        ])
    }

    fn expected_descendants() -> Object {
        obj!({abraham, isaac, esau, jacob, joseph, judah})
    }

    #[test]
    fn all_strategy_combinations_agree_on_genealogy() {
        let db = genealogy_db();
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            for use_indexes in [false, true] {
                let out = Engine::new(descendants_program())
                    .strategy(strategy)
                    .indexes(use_indexes)
                    .run(&db)
                    .unwrap();
                assert_eq!(
                    out.database.dot("doa"),
                    &expected_descendants(),
                    "strategy={strategy:?} indexes={use_indexes}"
                );
            }
        }
    }

    #[test]
    fn engine_matches_reference_closure() {
        let db = genealogy_db();
        let reference = co_calculus::closure(
            &descendants_program(),
            &db,
            ClosureMode::Inflationary,
            MatchPolicy::Strict,
            co_calculus::ClosureLimits::default(),
        )
        .unwrap();
        let out = Engine::new(descendants_program()).run(&db).unwrap();
        assert_eq!(out.database, reference.object);
    }

    #[test]
    fn seminaive_does_less_matching_work_than_naive() {
        // Build a long chain so the fixpoint needs many iterations.
        let n = 30;
        let family =
            Object::set((0..n).map(
                |i| obj!([name: (format!("p{i}")), children: {[name: (format!("p{}", i + 1))]}]),
            ));
        let db = Object::tuple([("family", family)]);
        let program = Program::from_rules([
            Rule::fact(wff!([doa: {p0}])).unwrap(),
            Rule::new(
                wff!([doa: {(x())}]),
                wff!([family: {[name: (y()), children: {[name: (x())]}]}, doa: {(y())}]),
            )
            .unwrap(),
        ]);
        let naive = Engine::new(program.clone())
            .strategy(Strategy::Naive)
            .indexes(false)
            .run(&db)
            .unwrap();
        let semi = Engine::new(program)
            .strategy(Strategy::SemiNaive)
            .indexes(false)
            .run(&db)
            .unwrap();
        assert_eq!(naive.database, semi.database);
        // Same number of iterations, far fewer emitted matches overall.
        assert_eq!(naive.stats.iterations, semi.stats.iterations);
        assert!(
            semi.stats.matching.matches < naive.stats.matching.matches,
            "semi-naive {} vs naive {}",
            semi.stats.matching.matches,
            naive.stats.matching.matches
        );
    }

    #[test]
    fn divergence_is_guarded() {
        // Paper Example 4.6.
        let program = Program::from_rules([
            Rule::fact(wff!([list: {1}])).unwrap(),
            Rule::new(
                wff!([list: {[head: 1, tail: (x())]}]),
                wff!([list: {(x())}]),
            )
            .unwrap(),
        ]);
        let err = Engine::new(program)
            .guard(Guard {
                max_iterations: 40,
                max_depth: 25,
                ..Guard::default()
            })
            .run(&obj!([list: {}]))
            .unwrap_err();
        match err {
            EngineError::Diverged {
                reason,
                partial,
                stats,
            } => {
                assert!(reason.contains("depth") || reason.contains("iterations"));
                assert!(measure::size(&partial) > 1);
                assert!(stats.iterations > 1);
            }
        }
    }

    #[test]
    fn paper_literal_mode_forces_naive() {
        let p = Program::from_rules([Rule::new(wff!([r: {(x())}]), wff!([r: {(x())}])).unwrap()]);
        let e = Engine::new(p).mode(ClosureMode::PaperLiteral);
        assert_eq!(e.effective_strategy(), Strategy::Naive);
    }

    #[test]
    fn tracing_records_firings() {
        let out = Engine::new(descendants_program())
            .tracing(true)
            .run(&genealogy_db())
            .unwrap();
        let trace = out.trace.unwrap();
        assert!(trace.firings().count() >= 6);
        let text = trace.render();
        assert!(text.contains("iteration 1"));
        assert!(text.contains("fixpoint"));
    }

    #[test]
    fn stats_are_recorded() {
        let out = Engine::new(descendants_program())
            .run(&genealogy_db())
            .unwrap();
        assert!(out.stats.iterations >= 3);
        assert_eq!(
            out.stats.rule_applications,
            out.stats.iterations * 2 // two rules
        );
        assert_eq!(out.stats.sizes.len() as u64, out.stats.iterations);
        assert!(out.stats.final_size().unwrap() > 0);
        assert!(out.stats.to_string().contains("iterations"));
    }

    #[test]
    fn empty_program_is_a_fixpoint_immediately() {
        let out = Engine::new(Program::new()).run(&obj!([r: {1}])).unwrap();
        assert_eq!(out.database, obj!([r: {1}]));
        assert_eq!(out.stats.iterations, 1);
    }
}

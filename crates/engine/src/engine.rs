//! The fixpoint engine: orchestrates strategy, parallelism, policy,
//! indexes, guards, statistics, and tracing around the calculus semantics.
//!
//! # Parallel rounds
//!
//! With [`Parallelism::Threads`], each iteration fans rule × partition
//! work units over a worker pool: the database snapshot of the round is
//! immutable (objects are interned, so sending a handle is an `Arc` bump),
//! every unit matches one rule body — or one [`Partition`] slice of its
//! root choice point — independently, and the per-unit results are merged
//! back **in rule order** with per-rule deduplication. The merged
//! per-rule substitution lists are bit-identical to sequential
//! evaluation's, so the derived database, the trace, and even the
//! interned `NodeId`s of the fixpoint are the same in both modes (see
//! `tests/parallel_equivalence.rs` and ARCHITECTURE.md's determinism
//! section).

use crate::delta::{diff, Delta};
use crate::dmatch::{delta_match, delta_match_part, has_choice_point, Partition};
use crate::index::IndexedPrefilter;
use crate::{EngineError, EvalStats, Guard, Trace, TraceEvent};
use co_calculus::{
    match_with, ClosureMode, MatchPolicy, MatchStats, Prefilter, Program, ScanAll, Substitution,
};
use co_object::lattice::{union, union_many};
use co_object::{measure, store, Object};
use std::sync::{mpsc, Arc};
use std::time::Instant;
use threadpool::ThreadPool;

/// Rounds whose delta carries at most this many new marks (see
/// [`Delta::new_marks`]) run on the engine thread even when a worker pool
/// exists, under [`Parallelism::Auto`]: with so few new binding seeds the
/// fan-out's per-unit dispatch overhead exceeds the matching work it
/// would spread. Naive rounds and first iterations match an all-`New`
/// delta (`new_marks == u64::MAX`) and are never skipped.
pub const SMALL_DELTA_FANOUT_THRESHOLD: u64 = 4;

/// Registry instruments shared by every engine in the process: one
/// `engine.rounds` tick and one `engine.match_ns` / `engine.merge_ns`
/// observation per fixpoint round (resolved once — the per-round cost is
/// two `Instant` reads and three relaxed atomics).
struct EngineInstruments {
    rounds: Arc<co_obs::Counter>,
    match_ns: Arc<co_obs::Histogram>,
    merge_ns: Arc<co_obs::Histogram>,
}

fn engine_instruments() -> &'static EngineInstruments {
    static CELL: std::sync::OnceLock<EngineInstruments> = std::sync::OnceLock::new();
    CELL.get_or_init(|| EngineInstruments {
        rounds: co_obs::counter("engine.rounds"),
        match_ns: co_obs::histogram("engine.match_ns"),
        merge_ns: co_obs::histogram("engine.merge_ns"),
    })
}

/// One `engine.round` span per iteration when `CO_TRACE` is on:
/// `delta_marks` is the round's new-mark count (`u64::MAX` for an
/// all-`New` naive/first round), the `_ns` fields split the round into
/// body matching, head merge + delta computation, and the GC sweep (0
/// when none fired).
#[allow(clippy::too_many_arguments)]
fn emit_round_span(
    iteration: u64,
    delta_marks: u64,
    match_ns: u64,
    merge_ns: u64,
    gc_ns: u64,
    size: u64,
    changed: bool,
) {
    use co_obs::FieldValue as F;
    co_obs::emit(
        "engine.round",
        &[
            ("iteration", F::U64(iteration)),
            ("delta_marks", F::U64(delta_marks)),
            ("match_ns", F::U64(match_ns)),
            ("merge_ns", F::U64(merge_ns)),
            ("gc_ns", F::U64(gc_ns)),
            ("size", F::U64(size)),
            ("changed", F::Bool(changed)),
        ],
    );
}

/// Fixpoint iteration strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Re-match every rule body against the whole database each iteration.
    Naive,
    /// Match against the delta of the previous iteration (plus the full
    /// database on the first one). Requires [`ClosureMode::Inflationary`];
    /// the engine falls back to naive under `PaperLiteral`.
    #[default]
    SemiNaive,
}

/// Degree of parallelism for rule application within each fixpoint round.
///
/// Parallel evaluation is an *execution* choice, not a semantic one: for
/// any [`Strategy`] and [`ClosureMode`], the parallel engine produces the
/// same fixpoint (down to interned `NodeId` identity) and the same trace
/// as sequential evaluation. [`Engine::new`] starts from
/// [`Parallelism::from_env`]: [`Parallelism::Auto`] (size the pool to the
/// machine) unless the `CO_ENGINE_THREADS` environment variable requests
/// an explicit count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Parallelism {
    /// Apply rules one after another on the calling thread.
    Sequential,
    /// Resolve the worker count from the machine at run start:
    /// [`std::thread::available_parallelism`] workers (so a 1-core host
    /// degrades to sequential evaluation with no pool at all). This is
    /// the adaptive default.
    #[default]
    Auto,
    /// Fan rule × partition work units across this many worker threads.
    /// `Threads(0)` and `Threads(1)` behave like `Sequential`.
    Threads(usize),
}

/// When the engine asks the object store to garbage-collect (see
/// `co_object::store::collect`).
///
/// Collection is an *execution* choice like [`Parallelism`]: it frees
/// interned nodes nobody references any more (superseded intermediate
/// databases, dropped match results) but never changes values, so the
/// fixpoint is bit-identical with any cadence (property-tested in
/// `tests/gc_soak.rs`). The engine pins its round snapshot as a GC root
/// before fanning work out, so a sweep can never free the database under
/// evaluation.
///
/// The cadence decides *when* the engine requests a sweep; *how* the
/// sweep runs is the store's affair. Under `CO_GC_PAUSE_BUDGET_US` the
/// cycle is sliced so interner locks are never held longer than the
/// budget, and when the dedicated collector thread is on
/// (`CO_GC_COLLECTOR=1`) the engine's `store::collect` call delegates to
/// it — still synchronous (the call returns after a full cycle), so
/// `gc_sweeps`/`gc_freed_nodes` accounting and the differential oracle
/// are unchanged in either mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GcCadence {
    /// Never collect during a run: the seed behaviour, right for short
    /// batch evaluations.
    #[default]
    Off,
    /// Collect after every `n`-th changed round (`n ≥ 1`): bounds store
    /// growth for long-running fixpoints whose working set drifts.
    EveryRounds(u32),
}

impl GcCadence {
    /// The cadence requested by the `CO_GC_EVERY_ROUND` environment
    /// variable: unset, unparsable, or `0` mean [`GcCadence::Off`]; `n ≥ 1`
    /// means [`GcCadence::EveryRounds`]`(n)`. So `CO_GC_EVERY_ROUND=1
    /// cargo test` runs an entire suite with collection forced after every
    /// round, without code changes.
    pub fn from_env() -> GcCadence {
        match std::env::var("CO_GC_EVERY_ROUND")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
        {
            Some(n) if n >= 1 => GcCadence::EveryRounds(n),
            _ => GcCadence::Off,
        }
    }

    /// True when a collection should run after iteration `iteration`.
    fn fires_after(self, iteration: u64) -> bool {
        match self {
            GcCadence::Off => false,
            GcCadence::EveryRounds(n) => iteration.is_multiple_of(u64::from(n.max(1))),
        }
    }
}

impl Parallelism {
    /// The parallelism requested by the `CO_ENGINE_THREADS` environment
    /// variable: `0` selects [`Auto`] explicitly, `1` means
    /// [`Sequential`], `n ≥ 2` means [`Threads`]`(n)`, and unset or
    /// unparsable fall back to the adaptive default [`Auto`]. This is what
    /// [`Engine::new`] starts from, so `CO_ENGINE_THREADS=4 cargo test`
    /// runs an entire suite in parallel mode — and `CO_ENGINE_THREADS=1`
    /// pins it sequential — without code changes.
    ///
    /// [`Auto`]: Parallelism::Auto
    /// [`Sequential`]: Parallelism::Sequential
    /// [`Threads`]: Parallelism::Threads
    pub fn from_env() -> Parallelism {
        match std::env::var("CO_ENGINE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(0) => Parallelism::Auto,
            Some(1) => Parallelism::Sequential,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::Auto,
        }
    }

    /// Effective worker count: 1 for sequential execution; for [`Auto`],
    /// whatever [`std::thread::available_parallelism`] reports (1 when
    /// even that is unknowable).
    ///
    /// [`Auto`]: Parallelism::Auto
    fn worker_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// The result of a successful run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The closed database (for `Inflationary`, the minimal closed object
    /// above the input).
    pub database: Object,
    /// Run statistics.
    pub stats: EvalStats,
    /// The execution trace, when tracing was enabled.
    pub trace: Option<Trace>,
}

/// A configured fixpoint engine.
///
/// ```
/// use co_engine::Engine;
/// use co_parser::{parse_object, parse_program};
///
/// let db = parse_object(
///     "[family: {[name: abraham, children: {[name: isaac]}],
///                [name: isaac,   children: {[name: esau], [name: jacob]}]}]",
/// )
/// .unwrap();
/// let program = parse_program(
///     "[doa: {abraham}].
///      [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
/// )
/// .unwrap();
/// let out = Engine::new(program).run(&db).unwrap();
/// assert_eq!(
///     out.database.at_path(&["doa"]).unwrap(),
///     &parse_object("{abraham, isaac, esau, jacob}").unwrap()
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    pub(crate) program: Program,
    pub(crate) strategy: Strategy,
    pub(crate) mode: ClosureMode,
    pub(crate) policy: MatchPolicy,
    pub(crate) guard: Guard,
    pub(crate) use_indexes: bool,
    pub(crate) tracing: bool,
    pub(crate) parallelism: Parallelism,
    pub(crate) gc: GcCadence,
    /// The live checkpoint chain, when this engine has checkpointed (or
    /// was restored from a chain): `Engine::checkpoint` auto-selects
    /// delta snapshots against it. Shared across clones — a cloned engine
    /// continues the same chain.
    pub(crate) chain: std::sync::Arc<std::sync::Mutex<Option<crate::checkpoint::CheckpointHandle>>>,
}

impl Engine {
    /// Creates an engine with the default configuration: semi-naive,
    /// inflationary, strict matching, indexes on, default guard, no trace,
    /// parallelism from the environment ([`Parallelism::from_env`]), GC
    /// cadence from the environment ([`GcCadence::from_env`]).
    pub fn new(program: Program) -> Engine {
        Engine {
            program,
            strategy: Strategy::default(),
            mode: ClosureMode::default(),
            policy: MatchPolicy::default(),
            guard: Guard::default(),
            use_indexes: true,
            tracing: false,
            parallelism: Parallelism::from_env(),
            gc: GcCadence::from_env(),
            chain: std::sync::Arc::new(std::sync::Mutex::new(None)),
        }
    }

    /// The program this engine evaluates.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// This engine's configuration applied to a different program: the
    /// strategy, mode, policy, guard, index/tracing flags, parallelism,
    /// and GC cadence are kept; the checkpoint chain is **not** shared
    /// (a chain's delta layers carry the program they were written with,
    /// so a new program starts a new chain). This is how a
    /// [`SharedEngine`](crate::SharedEngine) runs per-request programs
    /// under one server-wide configuration.
    pub fn with_program(&self, program: Program) -> Engine {
        Engine {
            program,
            chain: std::sync::Arc::new(std::sync::Mutex::new(None)),
            ..self.clone()
        }
    }

    /// The configured match policy.
    pub fn match_policy(&self) -> MatchPolicy {
        self.policy
    }

    /// Selects the iteration strategy.
    pub fn strategy(mut self, s: Strategy) -> Engine {
        self.strategy = s;
        self
    }

    /// Selects the degree of parallelism for rule application.
    ///
    /// ```
    /// use co_engine::{Engine, Parallelism};
    /// use co_parser::{parse_object, parse_program};
    ///
    /// let db = parse_object("[edge: {[s: a, t: b], [s: b, t: c]}]").unwrap();
    /// let program = parse_program(
    ///     "[path: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].
    ///      [path: {[s: X, t: Z]}] :- [edge: {[s: X, t: Y]}, path: {[s: Y, t: Z]}].",
    /// )
    /// .unwrap();
    /// let sequential = Engine::new(program.clone()).run(&db).unwrap();
    /// let parallel = Engine::new(program)
    ///     .parallelism(Parallelism::Threads(4))
    ///     .run(&db)
    ///     .unwrap();
    /// // Parallel evaluation is deterministic: bit-identical fixpoint.
    /// assert_eq!(sequential.database, parallel.database);
    /// assert_eq!(sequential.database.node_id(), parallel.database.node_id());
    /// ```
    pub fn parallelism(mut self, p: Parallelism) -> Engine {
        self.parallelism = p;
        self
    }

    /// Convenience for [`Engine::parallelism`]`(Parallelism::Threads(n))`.
    pub fn threads(self, n: usize) -> Engine {
        self.parallelism(Parallelism::Threads(n))
    }

    /// Selects when the engine garbage-collects the object store.
    ///
    /// ```
    /// use co_engine::{Engine, GcCadence};
    /// use co_parser::{parse_object, parse_program};
    ///
    /// let db = parse_object("[edge: {[s: a, t: b], [s: b, t: c]}]").unwrap();
    /// let program = parse_program(
    ///     "[path: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].
    ///      [path: {[s: X, t: Z]}] :- [edge: {[s: X, t: Y]}, path: {[s: Y, t: Z]}].",
    /// )
    /// .unwrap();
    /// let plain = Engine::new(program.clone()).run(&db).unwrap();
    /// let collected = Engine::new(program)
    ///     .gc_cadence(GcCadence::EveryRounds(1))
    ///     .run(&db)
    ///     .unwrap();
    /// // Collection frees garbage, never values: identical fixpoints.
    /// assert_eq!(plain.database, collected.database);
    /// assert!(collected.stats.gc_sweeps > 0);
    /// ```
    pub fn gc_cadence(mut self, c: GcCadence) -> Engine {
        self.gc = c;
        self
    }

    /// Convenience for [`Engine::gc_cadence`]`(GcCadence::EveryRounds(n))`.
    pub fn gc_every_rounds(self, n: u32) -> Engine {
        self.gc_cadence(GcCadence::EveryRounds(n))
    }

    /// Selects the closure mode (see `co_calculus::ClosureMode`).
    pub fn mode(mut self, m: ClosureMode) -> Engine {
        self.mode = m;
        self
    }

    /// Selects the match policy (see `co_calculus::MatchPolicy`).
    pub fn policy(mut self, p: MatchPolicy) -> Engine {
        self.policy = p;
        self
    }

    /// Installs a resource guard.
    pub fn guard(mut self, g: Guard) -> Engine {
        self.guard = g;
        self
    }

    /// Enables or disables attribute-value indexes.
    pub fn indexes(mut self, on: bool) -> Engine {
        self.use_indexes = on;
        self
    }

    /// Enables or disables tracing.
    pub fn tracing(mut self, on: bool) -> Engine {
        self.tracing = on;
        self
    }

    /// The effective strategy: semi-naive needs monotone growth, which only
    /// the inflationary mode guarantees.
    fn effective_strategy(&self) -> Strategy {
        match (self.strategy, self.mode) {
            (Strategy::SemiNaive, ClosureMode::PaperLiteral) => Strategy::Naive,
            (s, _) => s,
        }
    }

    /// Runs the engine to the closure of `db` under the program.
    pub fn run(&self, db: &Object) -> Result<RunOutcome, EngineError> {
        let start = Instant::now();
        let strategy = self.effective_strategy();
        let indexed: Option<Arc<IndexedPrefilter>> = if self.use_indexes {
            Some(Arc::new(IndexedPrefilter::new(self.policy)))
        } else {
            None
        };
        let prefilter: Arc<dyn Prefilter + Send + Sync> = match &indexed {
            Some(p) => Arc::clone(p) as Arc<dyn Prefilter + Send + Sync>,
            None => Arc::new(ScanAll),
        };
        // The worker pool lives for the whole run; per-round dispatch is a
        // boxed closure + channel round-trip per work unit, not a thread
        // spawn. The partition plan is constant for the run: oversubscribe
        // slightly (2 units per worker) so uneven rule costs still keep
        // every worker busy, slicing each rule's root choice point into
        // `base_parts` disjoint partitions — except rules whose bodies
        // have none to slice (facts, pure tuple shapes): every partition
        // of those would run the identical full search, so they dispatch
        // as a single unit.
        let workers = self.parallelism.worker_count();
        let pool: Option<(ThreadPool, Arc<Program>, Vec<usize>)> =
            if workers >= 2 && !self.program.rules().is_empty() {
                let base_parts = (workers * 2).div_ceil(self.program.rules().len()).max(1);
                let parts_per_rule = self
                    .program
                    .rules()
                    .iter()
                    .map(|r| {
                        if has_choice_point(r.body()) {
                            base_parts
                        } else {
                            1
                        }
                    })
                    .collect();
                Some((
                    ThreadPool::new(workers),
                    Arc::new(self.program.clone()),
                    parts_per_rule,
                ))
            } else {
                None
            };
        // Matching the whole database is matching against an all-`New`
        // delta (first iterations, naive rounds).
        let all_new = Arc::new(Delta::New);

        let mut stats = EvalStats::default();
        let mut trace = if self.tracing {
            Some(Trace::new())
        } else {
            None
        };
        let mut current = db.clone();
        let mut delta: Option<Arc<Delta>> = None; // None = first iteration.

        loop {
            let iteration = stats.iterations + 1;
            if iteration > self.guard.max_iterations {
                return Err(self.diverged(
                    format!(
                        "no fixpoint within {} iterations",
                        self.guard.max_iterations
                    ),
                    current,
                    stats,
                    start,
                ));
            }
            if let Some(reason) = self.guard.check_time(start.elapsed()) {
                return Err(self.diverged(reason, current, stats, start));
            }
            if let Some(t) = trace.as_mut() {
                t.record(TraceEvent::IterationStart { iteration });
            }

            // When GC can run, pin this round's snapshot as an explicit
            // root before fanning work units out: workers only ever borrow
            // `Arc` clones of it, and the pin guarantees a sweep scheduled
            // anywhere (another engine, an operator task) keeps the
            // database under evaluation alive for the whole round.
            let round_root: Option<store::Root> = match self.gc {
                GcCadence::Off => None,
                GcCadence::EveryRounds(_) => store::pin(&current),
            };

            let round_marks = match (strategy, &delta) {
                (Strategy::SemiNaive, Some(d)) => d.new_marks(),
                _ => all_new.new_marks(),
            };
            let match_start = Instant::now();

            // Match every rule body — sequentially or fanned out over the
            // pool — into one substitution list per rule, in rule order.
            let per_rule = match &pool {
                Some((pool, program, parts_per_rule)) => {
                    let round_delta = match (strategy, &delta) {
                        (Strategy::SemiNaive, Some(d)) => d,
                        _ => &all_new,
                    };
                    // Under the adaptive default, a round whose delta
                    // carries only a handful of new marks (the long tail
                    // of a converging fixpoint) is cheaper to run on this
                    // thread than to fan out: dispatch is a boxed closure
                    // plus a channel round-trip per work unit either way.
                    // Sequential and parallel rounds are bit-identical,
                    // so this is purely an execution choice.
                    if self.parallelism == Parallelism::Auto
                        && round_delta.new_marks() <= SMALL_DELTA_FANOUT_THRESHOLD
                    {
                        stats.fanout_skipped_rounds += 1;
                        self.sequential_round(
                            strategy,
                            &current,
                            delta.as_deref(),
                            prefilter.as_ref(),
                            &mut stats,
                        )
                    } else {
                        self.parallel_round(
                            pool,
                            program,
                            parts_per_rule,
                            &current,
                            round_delta,
                            &prefilter,
                            &mut stats,
                        )
                    }
                }
                None => self.sequential_round(
                    strategy,
                    &current,
                    delta.as_deref(),
                    prefilter.as_ref(),
                    &mut stats,
                ),
            };

            let match_elapsed = match_start.elapsed();
            let merge_start = Instant::now();

            // Collect head contributions; union them in one bulk pass
            // (quadratic-accumulation matters at scale).
            let mut contributions: Vec<Object> = Vec::new();
            for (rule_index, (substs, mstats)) in per_rule.into_iter().enumerate() {
                let rule = &self.program.rules()[rule_index];
                stats.rule_applications += 1;
                stats.matching.merge(mstats);
                for s in &substs {
                    let contribution = rule.head().instantiate(s);
                    if let Some(t) = trace.as_mut() {
                        t.record(TraceEvent::RuleFired {
                            iteration,
                            rule_index,
                            substitution: s.clone(),
                            contribution: contribution.clone(),
                        });
                    }
                    contributions.push(contribution);
                }
            }
            let applied = union_many(contributions);

            let next = match self.mode {
                ClosureMode::Inflationary => union(&current, &applied),
                ClosureMode::PaperLiteral => applied,
            };
            let changed = next != current;
            let size = measure::size(&next);
            stats.iterations = iteration;
            stats.sizes.push(size);
            if let Some(t) = trace.as_mut() {
                t.record(TraceEvent::IterationEnd {
                    iteration,
                    size,
                    changed,
                });
            }

            let instruments = engine_instruments();
            instruments.rounds.inc();
            instruments.match_ns.record_duration(match_elapsed);

            if !changed {
                let merge_elapsed = merge_start.elapsed();
                instruments.merge_ns.record_duration(merge_elapsed);
                if co_obs::trace_enabled() {
                    emit_round_span(
                        iteration,
                        round_marks,
                        match_elapsed.as_nanos() as u64,
                        merge_elapsed.as_nanos() as u64,
                        0,
                        size as u64,
                        false,
                    );
                }
                stats.elapsed = start.elapsed();
                return Ok(RunOutcome {
                    database: current,
                    stats,
                    trace,
                });
            }
            if let Some(reason) = self.guard.check_database(&next) {
                return Err(self.diverged(reason, next, stats, start));
            }

            if strategy == Strategy::SemiNaive {
                delta = Some(Arc::new(diff(&current, &next)));
            }
            if let Some(p) = &indexed {
                p.retain_reachable(&next);
            }
            // Promote `next` before a potential sweep: unpinning the round
            // root and dropping the superseded database here turns the old
            // generation into garbage this round's collection reclaims.
            drop(round_root);
            current = next;
            let merge_elapsed = merge_start.elapsed();
            instruments.merge_ns.record_duration(merge_elapsed);
            let mut gc_elapsed = std::time::Duration::ZERO;
            if self.gc.fires_after(iteration) {
                // Pin the new database, sweep, and account for it. The
                // superseded generation and this round's match
                // intermediates are the garbage being reclaimed; `current`
                // (pinned), the trace, and anything the caller holds are
                // reachable and therefore untouchable.
                let gc_start = Instant::now();
                let _db_root = store::pin(&current);
                let swept = store::collect();
                gc_elapsed = gc_start.elapsed();
                stats.gc_sweeps += 1;
                stats.gc_freed_nodes += swept.freed_nodes() as u64;
            }
            if co_obs::trace_enabled() {
                emit_round_span(
                    iteration,
                    round_marks,
                    match_elapsed.as_nanos() as u64,
                    merge_elapsed.as_nanos() as u64,
                    gc_elapsed.as_nanos() as u64,
                    size as u64,
                    true,
                );
            }
        }
    }

    /// One sequential round: every rule matched in order on this thread.
    fn sequential_round(
        &self,
        strategy: Strategy,
        current: &Object,
        delta: Option<&Delta>,
        prefilter: &dyn Prefilter,
        stats: &mut EvalStats,
    ) -> Vec<(Vec<Substitution>, MatchStats)> {
        stats.work_units += self.program.rules().len() as u64;
        self.program
            .rules()
            .iter()
            .map(|rule| match (strategy, delta) {
                (Strategy::SemiNaive, Some(d)) => {
                    delta_match(rule.body(), current, d, self.policy, prefilter)
                }
                _ => match_with(rule.body(), current, self.policy, prefilter),
            })
            .collect()
    }

    /// One parallel round: `rule × partition` work units (per the
    /// run-constant `parts_per_rule` plan) fanned over the pool, merged
    /// back in `(rule, partition)` order with per-rule deduplication —
    /// the result is bit-identical to a sequential round.
    #[allow(clippy::too_many_arguments)]
    fn parallel_round(
        &self,
        pool: &ThreadPool,
        program: &Arc<Program>,
        parts_per_rule: &[usize],
        current: &Object,
        round_delta: &Arc<Delta>,
        prefilter: &Arc<dyn Prefilter + Send + Sync>,
        stats: &mut EvalStats,
    ) -> Vec<(Vec<Substitution>, MatchStats)> {
        let total_units: usize = parts_per_rule.iter().sum();
        stats.work_units += total_units as u64;
        let (tx, rx) = mpsc::channel();
        let mut next_unit = 0usize;
        for (rule_index, &parts) in parts_per_rule.iter().enumerate() {
            for part in 0..parts {
                let tx = tx.clone();
                let program = Arc::clone(program);
                // Interned handles make these clones reference bumps.
                let db = current.clone();
                let delta = Arc::clone(round_delta);
                let prefilter = Arc::clone(prefilter);
                let policy = self.policy;
                let unit = next_unit;
                next_unit += 1;
                let partition = (parts > 1).then_some(Partition {
                    index: part,
                    of: parts,
                });
                pool.execute(move || {
                    let rule = &program.rules()[rule_index];
                    let out = delta_match_part(
                        rule.body(),
                        &db,
                        &delta,
                        policy,
                        prefilter.as_ref(),
                        partition,
                    );
                    // A send can only fail if the receiver is gone, which
                    // means the engine thread panicked; nothing to do.
                    let _ = tx.send((unit, out));
                });
            }
        }
        drop(tx);
        let mut by_unit: Vec<Option<(Vec<Substitution>, MatchStats)>> =
            (0..total_units).map(|_| None).collect();
        for (unit, out) in rx.iter() {
            by_unit[unit] = Some(out);
        }
        let mut units = by_unit.into_iter().map(|slot| {
            slot.expect("a parallel match worker panicked without delivering its result")
        });
        parts_per_rule
            .iter()
            .map(|&parts| {
                let mut substs: Vec<Substitution> = Vec::new();
                let mut mstats = MatchStats::default();
                for _ in 0..parts {
                    let (part_substs, part_stats) = units.next().expect("unit count");
                    substs.extend(part_substs);
                    mstats.merge(part_stats);
                }
                if parts > 1 {
                    // Distinct partitions can derive the same substitution
                    // through different root witnesses: dedup to match the
                    // sequential (set-semantics) result exactly. (A single
                    // unit is already sorted and deduplicated.)
                    substs.sort_by(|a, b| a.iter().cmp(b.iter()));
                    substs.dedup();
                    mstats.matches = substs.len() as u64;
                }
                (substs, mstats)
            })
            .collect()
    }

    fn diverged(
        &self,
        reason: String,
        partial: Object,
        mut stats: EvalStats,
        start: Instant,
    ) -> EngineError {
        stats.elapsed = start.elapsed();
        EngineError::Diverged {
            reason,
            partial: Box::new(partial),
            stats: Box::new(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_calculus::{wff, Rule, Var};
    use co_object::obj;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    fn genealogy_db() -> Object {
        obj!([family: {
            [name: abraham, children: {[name: isaac]}],
            [name: isaac, children: {[name: esau], [name: jacob]}],
            [name: jacob, children: {[name: joseph], [name: judah]}]
        }])
    }

    fn descendants_program() -> Program {
        Program::from_rules([
            Rule::fact(wff!([doa: {abraham}])).unwrap(),
            Rule::new(
                wff!([doa: {(x())}]),
                wff!([family: {[name: (y()), children: {[name: (x())]}]}, doa: {(y())}]),
            )
            .unwrap(),
        ])
    }

    fn expected_descendants() -> Object {
        obj!({abraham, isaac, esau, jacob, joseph, judah})
    }

    #[test]
    fn auto_skips_fanout_on_tiny_delta_rounds() {
        let db = genealogy_db();
        let sequential = Engine::new(descendants_program())
            .parallelism(Parallelism::Sequential)
            .run(&db)
            .unwrap();
        let auto = Engine::new(descendants_program())
            .parallelism(Parallelism::Auto)
            .run(&db)
            .unwrap();
        // The skip is an execution choice only: bit-identical fixpoint.
        assert_eq!(auto.database, sequential.database);
        assert_eq!(auto.database.node_id(), sequential.database.node_id());
        let multi_core = std::thread::available_parallelism()
            .map(|n| n.get() >= 2)
            .unwrap_or(false);
        if multi_core {
            // The genealogy fixpoint's late rounds derive a handful of
            // descendants each — they must stay on the engine thread.
            assert!(
                auto.stats.fanout_skipped_rounds >= 1,
                "expected tiny-delta rounds to skip fan-out: {}",
                auto.stats
            );
            // Never-skipped configurations: explicit thread counts...
            let threads = Engine::new(descendants_program())
                .parallelism(Parallelism::Threads(4))
                .run(&db)
                .unwrap();
            assert_eq!(threads.stats.fanout_skipped_rounds, 0);
            // ...and naive rounds (always an all-New delta).
            let naive = Engine::new(descendants_program())
                .parallelism(Parallelism::Auto)
                .strategy(Strategy::Naive)
                .run(&db)
                .unwrap();
            assert_eq!(naive.stats.fanout_skipped_rounds, 0);
        } else {
            // No pool on a single-core host: nothing to skip.
            assert_eq!(auto.stats.fanout_skipped_rounds, 0);
        }
    }

    #[test]
    fn all_strategy_combinations_agree_on_genealogy() {
        let db = genealogy_db();
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            for use_indexes in [false, true] {
                let out = Engine::new(descendants_program())
                    .strategy(strategy)
                    .indexes(use_indexes)
                    .run(&db)
                    .unwrap();
                assert_eq!(
                    out.database.dot("doa"),
                    &expected_descendants(),
                    "strategy={strategy:?} indexes={use_indexes}"
                );
            }
        }
    }

    #[test]
    fn engine_matches_reference_closure() {
        let db = genealogy_db();
        let reference = co_calculus::closure(
            &descendants_program(),
            &db,
            ClosureMode::Inflationary,
            MatchPolicy::Strict,
            co_calculus::ClosureLimits::default(),
        )
        .unwrap();
        let out = Engine::new(descendants_program()).run(&db).unwrap();
        assert_eq!(out.database, reference.object);
    }

    #[test]
    fn seminaive_does_less_matching_work_than_naive() {
        // Build a long chain so the fixpoint needs many iterations.
        let n = 30;
        let family =
            Object::set((0..n).map(
                |i| obj!([name: (format!("p{i}")), children: {[name: (format!("p{}", i + 1))]}]),
            ));
        let db = Object::tuple([("family", family)]);
        let program = Program::from_rules([
            Rule::fact(wff!([doa: {p0}])).unwrap(),
            Rule::new(
                wff!([doa: {(x())}]),
                wff!([family: {[name: (y()), children: {[name: (x())]}]}, doa: {(y())}]),
            )
            .unwrap(),
        ]);
        let naive = Engine::new(program.clone())
            .strategy(Strategy::Naive)
            .indexes(false)
            .run(&db)
            .unwrap();
        let semi = Engine::new(program)
            .strategy(Strategy::SemiNaive)
            .indexes(false)
            .run(&db)
            .unwrap();
        assert_eq!(naive.database, semi.database);
        // Same number of iterations, far fewer emitted matches overall.
        assert_eq!(naive.stats.iterations, semi.stats.iterations);
        assert!(
            semi.stats.matching.matches < naive.stats.matching.matches,
            "semi-naive {} vs naive {}",
            semi.stats.matching.matches,
            naive.stats.matching.matches
        );
    }

    #[test]
    fn divergence_is_guarded() {
        // Paper Example 4.6.
        let program = Program::from_rules([
            Rule::fact(wff!([list: {1}])).unwrap(),
            Rule::new(
                wff!([list: {[head: 1, tail: (x())]}]),
                wff!([list: {(x())}]),
            )
            .unwrap(),
        ]);
        let err = Engine::new(program)
            .guard(Guard {
                max_iterations: 40,
                max_depth: 25,
                ..Guard::default()
            })
            .run(&obj!([list: {}]))
            .unwrap_err();
        match err {
            EngineError::Diverged {
                reason,
                partial,
                stats,
            } => {
                assert!(reason.contains("depth") || reason.contains("iterations"));
                assert!(measure::size(&partial) > 1);
                assert!(stats.iterations > 1);
            }
        }
    }

    #[test]
    fn paper_literal_mode_forces_naive() {
        let p = Program::from_rules([Rule::new(wff!([r: {(x())}]), wff!([r: {(x())}])).unwrap()]);
        let e = Engine::new(p).mode(ClosureMode::PaperLiteral);
        assert_eq!(e.effective_strategy(), Strategy::Naive);
    }

    #[test]
    fn tracing_records_firings() {
        let out = Engine::new(descendants_program())
            .tracing(true)
            .run(&genealogy_db())
            .unwrap();
        let trace = out.trace.unwrap();
        assert!(trace.firings().count() >= 6);
        let text = trace.render();
        assert!(text.contains("iteration 1"));
        assert!(text.contains("fixpoint"));
    }

    #[test]
    fn stats_are_recorded() {
        let out = Engine::new(descendants_program())
            .run(&genealogy_db())
            .unwrap();
        assert!(out.stats.iterations >= 3);
        assert_eq!(
            out.stats.rule_applications,
            out.stats.iterations * 2 // two rules
        );
        assert_eq!(out.stats.sizes.len() as u64, out.stats.iterations);
        assert!(out.stats.final_size().unwrap() > 0);
        assert!(out.stats.to_string().contains("iterations"));
    }

    #[test]
    fn parallel_runs_match_sequential_bit_for_bit() {
        let db = genealogy_db();
        let sequential = Engine::new(descendants_program())
            .parallelism(Parallelism::Sequential)
            .tracing(true)
            .run(&db)
            .unwrap();
        for threads in [2, 3, 4, 8] {
            for indexes in [false, true] {
                let parallel = Engine::new(descendants_program())
                    .threads(threads)
                    .indexes(indexes)
                    .tracing(true)
                    .run(&db)
                    .unwrap();
                assert_eq!(
                    parallel.database, sequential.database,
                    "threads={threads} indexes={indexes}"
                );
                // Hash-consing makes "bit-identical" checkable: the same
                // canonical value is the same interned node.
                assert_eq!(parallel.database.node_id(), sequential.database.node_id());
                // The merged trace is identical event-for-event.
                assert_eq!(
                    parallel.trace.as_ref().unwrap().events(),
                    sequential.trace.as_ref().unwrap().events(),
                    "threads={threads} indexes={indexes}"
                );
            }
        }
    }

    #[test]
    fn parallel_naive_strategy_agrees_too() {
        let db = genealogy_db();
        let sequential = Engine::new(descendants_program())
            .strategy(Strategy::Naive)
            .parallelism(Parallelism::Sequential)
            .run(&db)
            .unwrap();
        let parallel = Engine::new(descendants_program())
            .strategy(Strategy::Naive)
            .threads(4)
            .run(&db)
            .unwrap();
        assert_eq!(parallel.database, sequential.database);
        assert_eq!(parallel.stats.iterations, sequential.stats.iterations);
    }

    #[test]
    fn parallel_divergence_is_guarded_like_sequential() {
        let program = Program::from_rules([
            Rule::fact(wff!([list: {1}])).unwrap(),
            Rule::new(
                wff!([list: {[head: 1, tail: (x())]}]),
                wff!([list: {(x())}]),
            )
            .unwrap(),
        ]);
        let err = Engine::new(program)
            .threads(4)
            .guard(Guard {
                max_iterations: 40,
                max_depth: 25,
                ..Guard::default()
            })
            .run(&obj!([list: {}]))
            .unwrap_err();
        let EngineError::Diverged { reason, .. } = err;
        assert!(reason.contains("depth") || reason.contains("iterations"));
    }

    #[test]
    fn work_units_reflect_fan_out() {
        let db = genealogy_db();
        let sequential = Engine::new(descendants_program())
            .parallelism(Parallelism::Sequential)
            .run(&db)
            .unwrap();
        let parallel = Engine::new(descendants_program())
            .threads(4)
            .run(&db)
            .unwrap();
        // Two rules per iteration sequentially…
        assert_eq!(sequential.stats.work_units, sequential.stats.iterations * 2);
        // …and strictly more units when each rule is partitioned.
        assert!(parallel.stats.work_units > parallel.stats.rule_applications);
    }

    #[test]
    fn empty_program_is_a_fixpoint_immediately() {
        let out = Engine::new(Program::new()).run(&obj!([r: {1}])).unwrap();
        assert_eq!(out.database, obj!([r: {1}]));
        assert_eq!(out.stats.iterations, 1);
    }
}

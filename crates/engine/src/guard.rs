//! Resource guards for fixpoint evaluation.
//!
//! Paper Example 4.6 exhibits a rule set whose closure does not exist (the
//! series "converges toward an infinite object"). Guards bound iterations,
//! database size, database depth, and wall-clock time, turning divergence
//! into a reportable [`crate::EngineError::Diverged`] instead of an OOM.

use co_object::{measure, Object};
use std::time::Duration;

/// Limits applied between fixpoint iterations.
#[derive(Clone, Copy, Debug)]
pub struct Guard {
    /// Maximum number of iterations (applications of `R`).
    pub max_iterations: u64,
    /// Maximum database size in nodes (see [`co_object::size`]).
    pub max_size: u64,
    /// Maximum database depth (paper Definition 3.2).
    pub max_depth: u64,
    /// Optional wall-clock budget for the whole run.
    pub time_limit: Option<Duration>,
}

impl Default for Guard {
    fn default() -> Self {
        Guard {
            max_iterations: 10_000,
            max_size: 10_000_000,
            max_depth: 10_000,
            time_limit: None,
        }
    }
}

impl Guard {
    /// A guard that effectively never fires (for trusted programs).
    pub fn unlimited() -> Guard {
        Guard {
            max_iterations: u64::MAX,
            max_size: u64::MAX,
            max_depth: u64::MAX,
            time_limit: None,
        }
    }

    /// A tight guard for interactive use.
    pub fn interactive() -> Guard {
        Guard {
            max_iterations: 1_000,
            max_size: 1_000_000,
            max_depth: 100,
            time_limit: Some(Duration::from_secs(10)),
        }
    }

    /// Checks the database against the size/depth limits; returns the
    /// violation description if any.
    pub fn check_database(&self, db: &Object) -> Option<String> {
        let size = measure::size(db);
        if size > self.max_size {
            return Some(format!(
                "database size {size} exceeds the limit {}",
                self.max_size
            ));
        }
        match measure::depth(db) {
            measure::Depth::Finite(d) if d > self.max_depth => Some(format!(
                "database depth {d} exceeds the limit {}",
                self.max_depth
            )),
            _ => None,
        }
    }

    /// Checks the elapsed time; returns the violation description if any.
    pub fn check_time(&self, elapsed: Duration) -> Option<String> {
        match self.time_limit {
            Some(limit) if elapsed > limit => Some(format!(
                "wall-clock time {elapsed:?} exceeds the limit {limit:?}"
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    #[test]
    fn size_limit_fires() {
        let g = Guard {
            max_size: 3,
            ..Guard::default()
        };
        assert!(g.check_database(&obj!({1, 2})).is_none()); // 3 nodes
        assert!(g.check_database(&obj!({1, 2, 3})).is_some()); // 4 nodes
    }

    #[test]
    fn depth_limit_fires() {
        let g = Guard {
            max_depth: 2,
            ..Guard::default()
        };
        assert!(g.check_database(&obj!({ 1 })).is_none()); // depth 2
        assert!(g
            .check_database(&obj!({
                {
                    1
                }
            }))
            .is_some()); // depth 3
    }

    #[test]
    fn top_database_never_trips_the_depth_limit_check() {
        // ⊤ has infinite depth but is a legal (1-node) database.
        let g = Guard::default();
        assert!(g.check_database(&Object::Top).is_none());
    }

    #[test]
    fn time_limit_fires() {
        let g = Guard {
            time_limit: Some(Duration::from_millis(10)),
            ..Guard::default()
        };
        assert!(g.check_time(Duration::from_millis(5)).is_none());
        assert!(g.check_time(Duration::from_millis(50)).is_some());
        assert!(Guard::default()
            .check_time(Duration::from_secs(999))
            .is_none());
    }

    #[test]
    fn presets() {
        assert!(Guard::unlimited()
            .check_database(&obj!({
                {
                    {
                        {
                            1
                        }
                    }
                }
            }))
            .is_none());
        assert_eq!(Guard::interactive().max_depth, 100);
    }
}

//! A shared, concurrently-readable engine head: the serving primitive.
//!
//! A [`SharedEngine`] owns one *head* database that many threads use at
//! once. Readers take a [`PinnedDb`] — a cheap snapshot of the head
//! (interned objects make the clone an `Arc` bump) pinned as a GC root —
//! and evaluate queries against it for as long as they like while writers
//! advance the head underneath them. Writers serialize among themselves
//! but never wait for readers, and readers never wait for an in-flight
//! fixpoint: the head lock is held only to swap an object handle.
//!
//! # Snapshot isolation, from the store's invariants
//!
//! This is MVCC without a version table, paid for by two properties the
//! object store already guarantees:
//!
//! - **immutability**: objects are interned and never mutated, so a head
//!   swap cannot change what a reader's handle points at;
//! - **never-recycled `NodeId`s**: a pinned snapshot keeps its node (and
//!   transitively its subtree) alive across [`co_object::store::collect`]
//!   sweeps, and any id a reader cached stays permanently detectable.
//!
//! A reader holding a [`PinnedDb`] therefore sees, for every query, the
//! exact frozen database of the moment it pinned — bit-identical (same
//! `NodeId`s) to what a single-threaded run quiesced at that version
//! would see, no matter how many writers advance or how often the store
//! collects in between. `crates/server/tests/snapshot_isolation.rs`
//! proves exactly this differentially.
//!
//! ```
//! use co_engine::{Engine, SharedEngine};
//! use co_parser::{parse_formula, parse_object, parse_program};
//! use co_calculus::interpret;
//!
//! let db = parse_object("[edge: {[s: a, t: b]}]").unwrap();
//! let shared = SharedEngine::new(Engine::new(Default::default()), db);
//!
//! // A reader pins the head…
//! let snap = shared.head();
//! let q = parse_formula("[edge: {[s: X, t: Y]}]").unwrap();
//! let before = interpret(&q, snap.object(), shared.policy());
//!
//! // …a writer advances it…
//! let p = parse_program("[edge: {[s: b, t: c]}].").unwrap();
//! shared.advance(&p).unwrap();
//!
//! // …and the pinned reader still sees its frozen version.
//! assert_eq!(interpret(&q, snap.object(), shared.policy()), before);
//! assert_eq!(shared.head().version(), snap.version() + 1);
//! ```

use crate::checkpoint::CheckpointError;
use crate::{Engine, EngineError, EvalStats};
use co_calculus::{MatchPolicy, Program};
use co_object::{store, NodeId, Object};
use co_wire::WriteStats;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// A database snapshot pinned against garbage collection: the per-session
/// read view of a [`SharedEngine`].
///
/// Holding one guarantees that every node reachable from
/// [`PinnedDb::object`] stays live and keeps its `NodeId` across any
/// number of [`co_object::store::collect`] sweeps — the snapshot a
/// query evaluates against cannot be freed or mutated mid-read. Dropping
/// the guard releases the pin; cloning re-pins (so a clone is safe to
/// ship to another thread with the same guarantee).
#[derive(Debug)]
pub struct PinnedDb {
    db: Object,
    version: u64,
    /// The GC pin. `None` only for atom/⊥/⊤ heads, which have no node a
    /// sweep could free.
    root: Option<store::Root>,
}

impl PinnedDb {
    fn new(db: Object, version: u64) -> PinnedDb {
        let root = store::pin(&db);
        PinnedDb { db, version, root }
    }

    /// The frozen database object.
    pub fn object(&self) -> &Object {
        &self.db
    }

    /// The head version this snapshot was taken at (the seed database is
    /// version 1; every committed write increments it).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The interned id of the snapshot root, `None` for atoms/⊥/⊤.
    pub fn root_id(&self) -> Option<NodeId> {
        self.root.as_ref().map(store::Root::id)
    }
}

impl Clone for PinnedDb {
    fn clone(&self) -> PinnedDb {
        PinnedDb::new(self.db.clone(), self.version)
    }
}

/// What a committed write did: the new head and the run statistics.
#[derive(Clone, Debug)]
pub struct AdvanceOutcome {
    /// The head version after the commit.
    pub version: u64,
    /// The committed database (the fixpoint of the program over the
    /// previous head).
    pub database: Object,
    /// The fixpoint run's statistics ([`EvalStats::default`] for a
    /// [`SharedEngine::merge`], which runs no fixpoint).
    pub stats: EvalStats,
}

/// The head state: swapped atomically under the `RwLock` in
/// [`SharedInner`]. The `Root` pin keeps the committed generation's ids
/// stable even when no session currently holds a snapshot of it.
struct Head {
    db: Object,
    root: Option<store::Root>,
    version: u64,
}

struct SharedInner {
    template: Engine,
    head: RwLock<Head>,
    /// Writers serialize here so each fixpoint runs against the latest
    /// committed head; held across a full `advance` run, **never** by
    /// readers.
    writer: Mutex<()>,
}

/// One engine configuration plus one mutable head database, shared by any
/// number of reader and writer threads. See the module docs for the
/// isolation contract.
///
/// The `template` engine supplies the semantic configuration — match
/// policy, closure mode, guard, indexes, parallelism, GC cadence — that
/// every [`SharedEngine::advance`] and [`SharedEngine::eval`] runs with;
/// its own program is ignored (each request carries one).
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<SharedInner>,
}

impl std::fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let head = self.read_head();
        f.debug_struct("SharedEngine")
            .field("version", &head.version)
            .field("root", &head.root.as_ref().map(store::Root::id))
            .finish_non_exhaustive()
    }
}

impl SharedEngine {
    /// A shared engine whose head starts at `db` (version 1), configured
    /// by `template` (see the type docs).
    pub fn new(template: Engine, db: Object) -> SharedEngine {
        let root = store::pin(&db);
        SharedEngine {
            inner: Arc::new(SharedInner {
                template,
                head: RwLock::new(Head {
                    db,
                    root,
                    version: 1,
                }),
                writer: Mutex::new(()),
            }),
        }
    }

    /// The configuration template (its program is never run).
    pub fn template(&self) -> &Engine {
        &self.inner.template
    }

    /// The template's match policy — what readers should interpret
    /// queries with to agree with the engine's own matching.
    pub fn policy(&self) -> MatchPolicy {
        self.inner.template.match_policy()
    }

    fn read_head(&self) -> std::sync::RwLockReadGuard<'_, Head> {
        self.inner
            .head
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Pins and returns the current head. This is the per-session read
    /// API: the lock is held only for the clone (an `Arc` bump), and the
    /// returned snapshot stays frozen and GC-protected for its lifetime.
    pub fn head(&self) -> PinnedDb {
        let head = self.read_head();
        PinnedDb::new(head.db.clone(), head.version)
    }

    /// The current head version without pinning.
    pub fn version(&self) -> u64 {
        self.read_head().version
    }

    /// Runs `program` to its fixpoint over the current head and commits
    /// the result as the new head. Writers serialize (the fixpoint runs
    /// against the latest committed state), but readers are never blocked:
    /// the head lock is taken for writing only to swap the object handle.
    ///
    /// On [`EngineError`] (divergence), nothing is committed.
    pub fn advance(&self, program: &Program) -> Result<AdvanceOutcome, EngineError> {
        let _writer = self
            .inner
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // The base is this writer's own frozen snapshot: pinned, so the
        // template's GC cadence can sweep mid-run without freeing it.
        let base = self.head();
        let engine = self.inner.template.with_program(program.clone());
        let out = engine.run(base.object())?;
        let outcome = self.commit(out.database, out.stats);
        if co_obs::trace_enabled() {
            use co_obs::FieldValue as F;
            co_obs::emit(
                "engine.advance",
                &[
                    ("version", F::U64(outcome.version)),
                    ("iterations", F::U64(outcome.stats.iterations)),
                    (
                        "elapsed_ns",
                        F::U64(outcome.stats.elapsed.as_nanos() as u64),
                    ),
                    ("gc_sweeps", F::U64(outcome.stats.gc_sweeps)),
                ],
            );
        }
        Ok(outcome)
    }

    /// Commits `union(head, delta)` as the new head without running a
    /// fixpoint — the cheap write path for plain fact insertion.
    pub fn merge(&self, delta: &Object) -> AdvanceOutcome {
        let _writer = self
            .inner
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let base = self.head();
        let next = co_object::lattice::union(base.object(), delta);
        self.commit(next, EvalStats::default())
    }

    /// The commit point: caller holds the writer lock, so `db` was
    /// derived from the latest committed head.
    fn commit(&self, db: Object, stats: EvalStats) -> AdvanceOutcome {
        let root = store::pin(&db);
        let mut head = self
            .inner
            .head
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        head.version += 1;
        head.db = db.clone();
        head.root = root;
        let version = head.version;
        drop(head);
        AdvanceOutcome {
            version,
            database: db,
            stats,
        }
    }

    /// Evaluates `program` to its fixpoint over `snapshot` **without
    /// committing** — a read-only what-if against a frozen version.
    pub fn eval(&self, program: &Program, snapshot: &PinnedDb) -> Result<EvalStats, EngineError> {
        self.eval_db(program, snapshot).map(|(_, stats)| stats)
    }

    /// [`SharedEngine::eval`] returning the result database too.
    pub fn eval_db(
        &self,
        program: &Program,
        snapshot: &PinnedDb,
    ) -> Result<(Object, EvalStats), EngineError> {
        let engine = self.inner.template.with_program(program.clone());
        let out = engine.run(snapshot.object())?;
        Ok((out.database, out.stats))
    }

    /// Checkpoints the current head to `path` via
    /// [`Engine::checkpoint`] (auto full/delta against the template's
    /// live chain) **without blocking readers or writers**: the head is
    /// pinned and cloned out of the lock first, and the serialization —
    /// however slow the disk — runs with no `SharedEngine` lock held.
    /// Sessions holding [`PinnedDb`]s stay fully live throughout
    /// (regression-tested in `crates/server/tests/checkpoint_live.rs`).
    ///
    /// Returns the write stats and the pinned snapshot that was written
    /// (a concurrent [`SharedEngine::advance`] may already have moved the
    /// head past it — the checkpoint is of a consistent version, not
    /// necessarily the newest).
    pub fn checkpoint(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<(WriteStats, PinnedDb), CheckpointError> {
        let pinned = self.head();
        let stats = self.inner.template.checkpoint(pinned.object(), path)?;
        Ok((stats, pinned))
    }

    /// [`SharedEngine::checkpoint`] into any writer (always a full
    /// snapshot, via [`Engine::checkpoint_full_to`]): the transport hook
    /// for shipping a consistent head over a socket, and the lever the
    /// non-blocking regression test uses to hold a checkpoint mid-write
    /// while proving readers stay live.
    pub fn checkpoint_to<W: Write>(&self, w: W) -> Result<(WriteStats, PinnedDb), CheckpointError> {
        let pinned = self.head();
        let stats = self.inner.template.checkpoint_full_to(pinned.object(), w)?;
        Ok((stats, pinned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GcCadence;
    use co_object::obj;
    use co_parser::{parse_formula, parse_program};

    fn shared() -> SharedEngine {
        SharedEngine::new(
            Engine::new(Program::new()).gc_cadence(GcCadence::EveryRounds(1)),
            obj!([edge: {[s: a, t: b], [s: b, t: c]}]),
        )
    }

    fn paths_program() -> Program {
        parse_program(
            "[path: {[s: X, t: Y]}] :- [edge: {[s: X, t: Y]}].
             [path: {[s: X, t: Z]}] :- [edge: {[s: X, t: Y]}, path: {[s: Y, t: Z]}].",
        )
        .unwrap()
    }

    #[test]
    fn pinned_readers_are_isolated_from_advances() {
        let shared = shared();
        let snap = shared.head();
        assert_eq!(snap.version(), 1);
        let q = parse_formula("[edge: {[s: X, t: Y]}]").unwrap();
        let before = co_calculus::interpret(&q, snap.object(), shared.policy());
        let before_id = snap.object().node_id();

        let out = shared.advance(&paths_program()).unwrap();
        assert_eq!(out.version, 2);
        assert!(out.stats.iterations >= 2);
        // The reader's frozen view is bit-identical after the advance…
        assert_eq!(snap.object().node_id(), before_id);
        assert_eq!(
            co_calculus::interpret(&q, snap.object(), shared.policy()),
            before
        );
        // …and a fresh head sees the new version.
        let head = shared.head();
        assert_eq!(head.version(), 2);
        assert_eq!(&out.database, head.object());
    }

    #[test]
    fn pins_survive_explicit_collection() {
        let shared = shared();
        let snap = shared.head();
        let id = snap.root_id().unwrap();
        // Advance twice so the version-1 generation is superseded, then
        // sweep: the pinned snapshot must survive with its id.
        shared.merge(&obj!([edge: {[s: c, t: d]}]));
        shared.advance(&paths_program()).unwrap();
        store::collect();
        assert!(store::contains_node(id));
        assert_eq!(snap.root_id(), Some(id));
        // Dropped pin + dropped object: now it is collectable (the head
        // pin only protects the *current* generation).
        drop(snap);
        store::collect();
        assert!(store::contains_node(
            shared.head().root_id().expect("composite head")
        ));
    }

    #[test]
    fn merge_is_a_cheap_committed_union() {
        let shared = shared();
        let out = shared.merge(&obj!([edge: {[s: z, t: a]}]));
        assert_eq!(out.version, 2);
        assert_eq!(out.stats.iterations, 0);
        assert_eq!(
            shared.head().object().dot("edge").as_set().unwrap().len(),
            3
        );
    }

    #[test]
    fn eval_does_not_commit() {
        let shared = shared();
        let snap = shared.head();
        let (db, stats) = shared.eval_db(&paths_program(), &snap).unwrap();
        assert!(stats.iterations >= 2);
        assert!(db.dot("path").as_set().is_some());
        assert_eq!(shared.version(), 1, "eval must leave the head untouched");
    }

    #[test]
    fn writers_serialize_and_readers_see_monotone_versions() {
        let shared = shared();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let fact = parse_program(&format!("[edge: {{[s: w{i}, t: a]}}].")).unwrap();
                    shared.advance(&fact).unwrap().version
                })
            })
            .collect();
        let mut versions: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        versions.sort_unstable();
        assert_eq!(versions, vec![2, 3, 4, 5]);
        // All four writer facts are in the final head (serialized writers
        // each ran over the previous commit).
        assert_eq!(
            shared.head().object().dot("edge").as_set().unwrap().len(),
            6
        );
    }
}

//! Incremental view maintenance for monotone additions.
//!
//! A [`Materialized`] view holds a database **closed** under a program.
//! When new base facts arrive (a monotone addition — the only kind of
//! update the paper's Horn-style calculus supports semantically), the view
//! re-closes *incrementally*: the union of the addition produces a delta
//! tree, and the semi-naive matcher re-derives only what the delta can
//! affect — exactly one more run of the fixpoint loop starting from the
//! already-closed state, not a recomputation from scratch.
//!
//! Correctness stems from closure minimality: `closure(C ∪ ΔO) =
//! closure(O ∪ ΔO)` whenever `C = closure(O)`, because closure is a
//! monotone, idempotent, inflationary operator (Tarski); the property test
//! below checks it against from-scratch recomputation.

use crate::{Engine, EngineError, EvalStats, RunOutcome};
use co_object::lattice::union;
use co_object::{Object, Path};

/// A database kept closed under a program across monotone additions.
#[derive(Clone, Debug)]
pub struct Materialized {
    engine: Engine,
    database: Object,
    /// Accumulated statistics over the initial run and all refreshes.
    total_stats: EvalStats,
    refreshes: u64,
}

impl Materialized {
    /// Closes `db` under `engine`'s program and materializes the result.
    pub fn new(engine: Engine, db: &Object) -> Result<Materialized, EngineError> {
        let out = engine.run(db)?;
        Ok(Materialized {
            engine,
            database: out.database,
            total_stats: out.stats,
            refreshes: 0,
        })
    }

    /// The current (closed) database.
    pub fn database(&self) -> &Object {
        &self.database
    }

    /// Accumulated statistics (initial run plus all refreshes).
    pub fn stats(&self) -> &EvalStats {
        &self.total_stats
    }

    /// Number of incremental refreshes performed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Adds `addition` (unioned into the database) and re-closes
    /// incrementally. Returns the outcome of the refresh run.
    pub fn add(&mut self, addition: &Object) -> Result<&Object, EngineError> {
        let grown = union(&self.database, addition);
        if grown == self.database {
            // Nothing new (the addition was already derivable/present).
            return Ok(&self.database);
        }
        // Starting the engine from the closed state means the first
        // iteration's full match re-derives only what it sees; with the
        // semi-naive strategy the subsequent iterations are delta-driven.
        // We seed the run with the grown database: since it is "almost
        // closed", the fixpoint typically lands in a couple of iterations.
        let out: RunOutcome = self.engine.run(&grown)?;
        self.database = out.database;
        self.merge_stats(&out.stats);
        self.refreshes += 1;
        Ok(&self.database)
    }

    /// Convenience: inserts one element into the set at `path`, then
    /// re-closes.
    pub fn insert_at(&mut self, path: &Path, element: Object) -> Result<&Object, EngineError> {
        // Build the minimal addition object: the path wrapped around a
        // singleton set.
        let mut addition = Object::set([element]);
        for a in path.steps().iter().rev() {
            addition = Object::tuple([(*a, addition)]);
        }
        self.add(&addition)
    }

    fn merge_stats(&mut self, s: &EvalStats) {
        self.total_stats.iterations += s.iterations;
        self.total_stats.rule_applications += s.rule_applications;
        self.total_stats.matching.merge(s.matching);
        self.total_stats.sizes.extend(s.sizes.iter().copied());
        self.total_stats.elapsed += s.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Strategy};
    use co_calculus::Program;
    use co_object::obj;
    use co_parser::{parse_object, parse_program};

    fn reach_program() -> Program {
        parse_program(
            "[reach: {X}] :- [start: {X}].
             [reach: {Y}] :- [edge: {[src: X, dst: Y]}, reach: {X}].",
        )
        .unwrap()
    }

    #[test]
    fn refresh_equals_recompute() {
        let base =
            parse_object("[edge: {[src: 0, dst: 1], [src: 1, dst: 2]}, start: {0}]").unwrap();
        let mut view = Materialized::new(Engine::new(reach_program()), &base).unwrap();
        assert_eq!(view.database().dot("reach"), &obj!({0, 1, 2}));

        // Add an edge 2 → 3 incrementally…
        let addition = parse_object("[edge: {[src: 2, dst: 3]}]").unwrap();
        view.add(&addition).unwrap();
        assert_eq!(view.database().dot("reach"), &obj!({0, 1, 2, 3}));
        assert_eq!(view.refreshes(), 1);

        // …and compare with a from-scratch closure.
        let full = union(&base, &addition);
        let scratch = Engine::new(reach_program()).run(&full).unwrap();
        assert_eq!(view.database(), &scratch.database);
    }

    #[test]
    fn redundant_additions_are_free() {
        let base = parse_object("[edge: {[src: 0, dst: 1]}, start: {0}]").unwrap();
        let mut view = Materialized::new(Engine::new(reach_program()), &base).unwrap();
        let before_iters = view.stats().iterations;
        // reach already contains 1: adding it is a no-op.
        view.add(&parse_object("[reach: {1}]").unwrap()).unwrap();
        assert_eq!(view.refreshes(), 0);
        assert_eq!(view.stats().iterations, before_iters);
    }

    #[test]
    fn insert_at_builds_the_addition() {
        let base = parse_object("[edge: {[src: 0, dst: 1]}, start: {0}]").unwrap();
        let mut view = Materialized::new(Engine::new(reach_program()), &base).unwrap();
        view.insert_at(
            &Path::parse("edge"),
            parse_object("[src: 1, dst: 9]").unwrap(),
        )
        .unwrap();
        assert!(view
            .database()
            .dot("reach")
            .as_set()
            .unwrap()
            .contains(&obj!(9)));
    }

    #[test]
    fn chains_of_refreshes_stay_correct() {
        let base = parse_object("[edge: {}, start: {0}]").unwrap();
        let mut view = Materialized::new(
            Engine::new(reach_program()).strategy(Strategy::SemiNaive),
            &base,
        )
        .unwrap();
        for i in 0..10i64 {
            view.insert_at(
                &Path::parse("edge"),
                parse_object(&format!("[src: {i}, dst: {}]", i + 1)).unwrap(),
            )
            .unwrap();
        }
        // Nodes 0 ..= 10 are reachable.
        assert_eq!(view.database().dot("reach").as_set().unwrap().len(), 11);
        assert_eq!(view.refreshes(), 10);
        // Cross-check against a single from-scratch run.
        let mut full = base;
        for i in 0..10i64 {
            full = union(
                &full,
                &parse_object(&format!("[edge: {{[src: {i}, dst: {}]}}]", i + 1)).unwrap(),
            );
        }
        let scratch = Engine::new(reach_program()).run(&full).unwrap();
        assert_eq!(view.database(), &scratch.database);
    }
}

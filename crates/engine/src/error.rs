//! Engine errors.

use crate::EvalStats;
use co_object::Object;
use std::fmt;

/// Errors produced by the fixpoint engine.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// The closure computation exceeded its guard limits — the program
    /// likely has no finite closure (paper Example 4.6).
    Diverged {
        /// Which limit was exceeded.
        reason: String,
        /// The last database state computed.
        partial: Box<Object>,
        /// Statistics up to the point of divergence.
        stats: Box<EvalStats>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Diverged { reason, stats, .. } => write!(
                f,
                "fixpoint diverged after {} iterations: {reason}",
                stats.iterations
            ),
        }
    }
}

impl std::error::Error for EngineError {}

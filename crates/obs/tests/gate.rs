//! The `CO_METRICS` gate and the trace file sink, exercised in a
//! process of their own: both are process-global, so this file holds a
//! single test to keep toggles race-free.

use co_obs::{json, Counter, FieldValue, Histogram, TraceOutput};
use std::io::Read;

#[test]
fn gate_and_file_sink_behave() {
    // Default (CO_METRICS unset in the test environment): recording on.
    let c = Counter::new();
    let h = Histogram::new();
    c.inc();
    h.record(10);
    assert_eq!(c.get(), 1);
    assert_eq!(h.count(), 1);

    // Gate off: gated mutations stop, record_always keeps working.
    co_obs::set_metrics_enabled(false);
    assert!(!co_obs::metrics_enabled());
    c.inc();
    h.record(10);
    assert_eq!(c.get(), 1);
    assert_eq!(h.count(), 1);
    h.record_always(20);
    assert_eq!(h.count(), 2);

    co_obs::set_metrics_enabled(true);
    c.inc();
    assert_eq!(c.get(), 2);

    // Trace off by default: emit is a no-op.
    assert!(!co_obs::trace_enabled());
    co_obs::emit("gate.ignored", &[]);

    // File sink: every line (spans and warns alike) must parse as JSON.
    let path = std::env::temp_dir().join(format!("co_obs_gate_{}.jsonl", std::process::id()));
    co_obs::set_trace_output(TraceOutput::File(path.clone()));
    assert!(co_obs::trace_enabled());
    co_obs::emit(
        "gate.event",
        &[("n", FieldValue::U64(1)), ("tag", FieldValue::Str("a\"b"))],
    );
    co_obs::warn(
        "gate",
        "synthetic warning",
        &[("value", FieldValue::Str("bad"))],
    );
    co_obs::set_trace_output(TraceOutput::Off);
    assert!(!co_obs::trace_enabled());

    let mut contents = String::new();
    std::fs::File::open(&path)
        .unwrap()
        .read_to_string(&mut contents)
        .unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 2, "one span + one warn: {contents}");
    for line in &lines {
        json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
    assert!(lines[0].contains("\"event\":\"gate.event\""));
    assert!(lines[1].contains("\"event\":\"warn\""));
    assert!(lines[1].contains("\"message\":\"synthetic warning\""));
}

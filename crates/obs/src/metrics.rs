//! Lock-free instruments: counters, gauges, and log-bucketed histograms.
//!
//! Every mutation is a relaxed atomic operation — no locks, no
//! allocation — so instruments can sit on request hot paths. The
//! process-wide `CO_METRICS` gate (default **on**) turns every gated
//! mutation into a single relaxed load plus a predictable branch.
//!
//! Histograms use HDR-style logarithmic buckets: values below 32 are
//! exact, and each power-of-two octave above that is split into 32
//! sub-buckets, bounding the relative quantile error at ~3.2% across
//! the full `u64` range with a fixed 1920-bucket table. `min`, `max`,
//! `sum`, and `count` are tracked exactly, and quantile estimates are
//! clamped into `[min, max]`, so `p(1.0)` is always the exact maximum.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BUCKET_BITS` linear sub-buckets.
pub const SUB_BUCKET_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BUCKET_BITS;
/// Total fixed bucket count covering the whole `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize + 1) * SUB as usize;

/// Maps a value to its histogram bucket. Monotone: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - u64::from(value.leading_zeros());
    let shift = msb - u64::from(SUB_BUCKET_BITS);
    ((shift + 1) * SUB + ((value >> shift) - SUB)) as usize
}

/// Inclusive `(low, high)` value range covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let i = index as u64;
    if i < SUB {
        return (i, i);
    }
    let shift = i / SUB - 1;
    let low = (SUB + i % SUB) << shift;
    (low, low + ((1u64 << shift) - 1))
}

/// The value a bucket reports when a quantile lands in it (midpoint).
fn bucket_representative(index: usize) -> u64 {
    let (low, high) = bucket_bounds(index);
    low + (high - low) / 2
}

// Process-wide metrics gate: 0 = uninitialised, 1 = off, 2 = on.
static METRICS_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether gated instruments record. One relaxed load after first use;
/// initialised from `CO_METRICS` (default on, `0`/`off`/`false` disable).
#[inline]
pub fn metrics_enabled() -> bool {
    match METRICS_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_metrics_from_env(),
    }
}

#[cold]
fn init_metrics_from_env() -> bool {
    let on = !matches!(
        std::env::var("CO_METRICS").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    );
    METRICS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Overrides the `CO_METRICS` gate for the whole process. Intended for
/// embedders measuring their own instrumentation overhead; flip only at
/// quiesce — gauges incremented while enabled must be decremented while
/// enabled to stay balanced.
pub fn set_metrics_enabled(on: bool) {
    METRICS_STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed level that can rise and fall (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if metrics_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn set(&self, n: i64) {
        if metrics_enabled() {
            self.value.store(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-size log-bucketed histogram. `record` is wait-free: four
/// relaxed atomic RMWs plus two relaxed min/max updates, no locks.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation, subject to the `CO_METRICS` gate.
    #[inline]
    pub fn record(&self, value: u64) {
        if metrics_enabled() {
            self.record_always(value);
        }
    }

    /// Records one observation regardless of the gate — for callers
    /// (like a load generator's client-side latencies) that must keep
    /// measuring while the gate is off for the system under test.
    #[inline]
    pub fn record_always(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting. Buckets are read after
    /// the totals, so a racing `record` can only make `buckets` sum to
    /// slightly more than `count` — never less than what was recorded.
    /// `record_always` bumps `count` before `min`/`max`, so a racing
    /// read can observe `count > 0` while `min` is still the `u64::MAX`
    /// sentinel (or above the not-yet-stored `max`); `min` is pinned to
    /// `max` here so every snapshot satisfies `min <= max`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            min: if count == 0 { 0 } else { min.min(max) },
            max,
            buckets,
        }
    }
}

/// An immutable, mergeable copy of a [`Histogram`]'s state. Buckets are
/// `(index, count)` pairs in strictly increasing index order, zero
/// buckets omitted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: exact for `q = 1.0`
    /// (the tracked maximum), within one bucket (~3.2% relative)
    /// otherwise, clamped into `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= target {
                // `min.min(max)` keeps the clamp bounds ordered even on
                // a snapshot built by hand with `min > max` — `clamp`
                // panics on inverted bounds.
                return bucket_representative(index as usize)
                    .clamp(self.min.min(self.max), self.max);
            }
        }
        self.max
    }

    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref().copied());
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref().copied());
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// The observations recorded since `earlier` (a previous snapshot of
    /// the same histogram): bucket-wise saturating subtraction. `count`,
    /// `sum`, and the buckets are exact deltas.
    ///
    /// `min`/`max` are derived from the delta's occupied bucket bounds, so
    /// they are **window-local estimates** with the histogram's usual
    /// ≤3.2% bucket-resolution error (one sub-bucket; exact below 32) —
    /// never the cumulative extremes. Before this fix the cumulative
    /// `min`/`max` leaked through, so every windowed report inherited the
    /// process-lifetime extremes of earlier windows. The cumulative `max`
    /// still *caps* the estimate (it is a valid upper bound for any
    /// window), which makes the last occupied bucket's estimate exact when
    /// the cumulative maximum itself landed in this window.
    pub fn minus(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut old: std::collections::BTreeMap<u32, u64> =
            earlier.buckets.iter().copied().collect();
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(old.remove(&i).unwrap_or(0));
                (d > 0).then_some((i, d))
            })
            .collect();
        let (min, max) = match (buckets.first(), buckets.last()) {
            (Some(&(first, _)), Some(&(last, _))) => {
                let low = bucket_bounds(first as usize).0.max(self.min);
                let high = bucket_bounds(last as usize).1.min(self.max);
                (low, high)
            }
            _ => (0, 0), // empty window: no observations, no extremes
        };
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_roundtrip() {
        assert_eq!(NUM_BUCKETS, 1920);
        let mut prev = 0;
        for v in (0..4096).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index must be monotone at {v}");
            assert!(idx < NUM_BUCKETS);
            let (low, high) = bucket_bounds(idx);
            assert!(low <= v && v <= high, "{v} outside bucket [{low}, {high}]");
            prev = idx;
        }
        for idx in 0..NUM_BUCKETS {
            let (low, high) = bucket_bounds(idx);
            assert_eq!(bucket_index(low), idx);
            assert_eq!(bucket_index(high), idx);
        }
    }

    #[test]
    fn small_values_are_exact_and_quantiles_bounded() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record_always(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.quantile(1.0), 100);
        // Values < 32 land in exact buckets; p10 = 10 exactly.
        assert_eq!(s.quantile(0.10), 10);
        // Larger quantiles are within one sub-bucket (~3.2%).
        let p90 = s.quantile(0.90) as f64;
        assert!((p90 - 90.0).abs() / 90.0 < 0.05, "p90 was {p90}");
    }

    #[test]
    fn merge_and_minus_are_inverse_on_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 40, 41, 1000, 65_536, 1 << 40] {
            a.record_always(v);
        }
        for v in [40u64, 7, 9_999_999] {
            b.record_always(v);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut merged = sa.clone();
        merged.merge(&sb);
        assert_eq!(merged.count, sa.count + sb.count);
        assert_eq!(merged.sum, sa.sum + sb.sum);
        assert_eq!(merged.min, sa.min.min(sb.min));
        assert_eq!(merged.max, sa.max.max(sb.max));
        let delta = merged.minus(&sa);
        assert_eq!(delta.count, sb.count);
        assert_eq!(delta.sum, sb.sum);
        assert_eq!(delta.buckets, sb.buckets);
    }

    #[test]
    fn windowed_minus_never_inherits_a_previous_windows_extreme() {
        // Regression (PR 10): `minus` used to copy the cumulative
        // `min`/`max` into the delta, so every windowed report carried the
        // process-lifetime extremes — BENCH_pr9's pool rows all showed the
        // threaded run's 251ms max. A window's extremes must come from its
        // own delta buckets.
        let h = Histogram::new();
        // Window 1: one huge and one tiny outlier.
        h.record_always(1);
        h.record_always(250_000_000);
        let s1 = h.snapshot();
        let w1 = s1.minus(&HistogramSnapshot::default());
        assert_eq!(w1.min, 1);
        assert_eq!(w1.max, 250_000_000); // capped by cumulative max: exact
                                         // Window 2: everything lands strictly inside window 1's extremes.
        for v in [5_000u64, 6_000, 7_000] {
            h.record_always(v);
        }
        let s2 = h.snapshot();
        let w2 = s2.minus(&s1);
        assert_eq!(w2.count, 3);
        assert!(
            w2.max < 250_000_000 && w2.min > 1,
            "window 2 inherited window 1's extremes: min={} max={}",
            w2.min,
            w2.max
        );
        // Bucket-resolution bound: the estimates are within one
        // sub-bucket (≤3.2%) of the true window extremes.
        assert!(w2.min <= 5_000 && 5_000_f64 <= w2.min as f64 * 1.032 + 1.0);
        assert!(w2.max >= 7_000 && w2.max as f64 <= 7_000.0 * 1.032 + 1.0);
        // An empty window reports no extremes at all.
        let w3 = h.snapshot().minus(&s2);
        assert_eq!((w3.count, w3.min, w3.max), (0, 0, 0));
    }

    #[test]
    fn quantile_tolerates_inverted_min_max() {
        // A torn snapshot (count bumped before min/max in
        // `record_always`) or a hand-built one can carry `min > max`;
        // `quantile` must not panic in `clamp` on it.
        let s = HistogramSnapshot {
            count: 1,
            sum: 50,
            min: u64::MAX,
            max: 0,
            buckets: vec![(50, 1)],
        };
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), 0);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_always(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 40_000);
    }
}

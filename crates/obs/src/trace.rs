//! The JSON-lines span/event emitter, gated by `CO_TRACE`.
//!
//! When tracing is off (the default) the entire emitter is one relaxed
//! atomic load returning `false` — no locks, no allocation, no
//! formatting. Hot paths should guard field construction behind
//! [`trace_enabled`] themselves so even the argument marshalling is
//! skipped.
//!
//! `CO_TRACE` values:
//!
//! | value            | meaning                                  |
//! |------------------|------------------------------------------|
//! | unset, `0`, `""` | off                                      |
//! | `1`, `stderr`    | one JSON object per line on stderr       |
//! | anything else    | treated as a file path, appended to      |
//!
//! The file mode exists so a test run can assert *every* emitted line
//! parses as JSON without stderr noise from the test harness mixed in.
//!
//! [`warn`] is **not** gated: configuration problems are always
//! emitted (to the trace sink when tracing is on, stderr otherwise),
//! as a single greppable JSON line.

use crate::json;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Where trace lines go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOutput {
    Off,
    Stderr,
    /// Append to this file (created if missing).
    File(PathBuf),
}

// 0 = uninitialised, 1 = off, 2 = on.
static TRACE_STATE: AtomicU8 = AtomicU8::new(0);

enum Sink {
    Stderr,
    File(File),
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Whether trace emission is on. After the first call this is a single
/// relaxed atomic load.
#[inline]
pub fn trace_enabled() -> bool {
    match TRACE_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_trace_from_env(),
    }
}

#[cold]
fn init_trace_from_env() -> bool {
    let out = match std::env::var("CO_TRACE") {
        Err(_) => TraceOutput::Off,
        Ok(v) => match v.as_str() {
            "" | "0" => TraceOutput::Off,
            "1" | "stderr" => TraceOutput::Stderr,
            path => TraceOutput::File(PathBuf::from(path)),
        },
    };
    set_trace_output(out);
    TRACE_STATE.load(Ordering::Relaxed) == 2
}

/// Redirects (or disables) trace output for the whole process,
/// overriding `CO_TRACE`. If the file cannot be opened, falls back to
/// stderr after reporting the failure there.
pub fn set_trace_output(out: TraceOutput) {
    let sink = match out {
        TraceOutput::Off => None,
        TraceOutput::Stderr => Some(Sink::Stderr),
        TraceOutput::File(path) => match OpenOptions::new().create(true).append(true).open(&path) {
            Ok(f) => Some(Sink::File(f)),
            Err(e) => {
                eprintln!(
                    "{{\"event\":\"warn\",\"component\":\"co-obs\",\
                         \"message\":\"CO_TRACE file open failed, using stderr\",\
                         \"error\":{}}}",
                    {
                        let mut s = String::new();
                        json::escape_into(&mut s, &e.to_string());
                        s
                    }
                );
                Some(Sink::Stderr)
            }
        },
    };
    // Order matters for racing emitters: install the sink before
    // flipping the flag on, and flip off before removing the sink
    // (write_line tolerates a missing sink either way).
    if sink.is_none() {
        TRACE_STATE.store(1, Ordering::Relaxed);
        *SINK.lock().unwrap() = None;
    } else {
        *SINK.lock().unwrap() = sink;
        TRACE_STATE.store(2, Ordering::Relaxed);
    }
}

/// One field of a trace event.
#[derive(Clone, Copy, Debug)]
pub enum FieldValue<'a> {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'a str),
    Bool(bool),
}

impl FieldValue<'_> {
    fn push_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => json::push_f64(out, *v),
            FieldValue::Str(s) => json::escape_into(out, s),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

fn render_line(event: &str, fields: &[(&str, FieldValue<'_>)]) -> String {
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(64 + fields.len() * 24);
    line.push_str("{\"ts_us\":");
    line.push_str(&ts_us.to_string());
    line.push_str(",\"event\":");
    json::escape_into(&mut line, event);
    for (key, value) in fields {
        line.push(',');
        json::escape_into(&mut line, key);
        line.push(':');
        value.push_json(&mut line);
    }
    line.push('}');
    line
}

fn write_line(line: &str) {
    let mut sink = SINK.lock().unwrap();
    match sink.as_mut() {
        Some(Sink::Stderr) | None => eprintln!("{line}"),
        Some(Sink::File(f)) => {
            // One write_all per line (not `writeln!`'s separate newline
            // write): with O_APPEND this keeps whole lines atomic even
            // when several traced processes share the file.
            let mut buf = String::with_capacity(line.len() + 1);
            buf.push_str(line);
            buf.push('\n');
            let _ = f.write_all(buf.as_bytes());
        }
    }
}

/// Emits one span/event as a JSON line. A no-op (one relaxed load)
/// unless tracing is on.
pub fn emit(event: &str, fields: &[(&str, FieldValue<'_>)]) {
    if trace_enabled() {
        write_line(&render_line(event, fields));
    }
}

/// Emits a warning as a JSON line — **regardless** of `CO_TRACE` (to
/// the trace sink when tracing is on, stderr otherwise). For
/// misconfiguration and other conditions a human must be able to grep
/// for.
pub fn warn(component: &str, message: &str, fields: &[(&str, FieldValue<'_>)]) {
    let mut all = Vec::with_capacity(fields.len() + 2);
    all.push(("component", FieldValue::Str(component)));
    all.push(("message", FieldValue::Str(message)));
    all.extend_from_slice(fields);
    let line = render_line("warn", &all);
    if trace_enabled() {
        write_line(&line);
    } else {
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_lines_are_valid_json() {
        let line = render_line(
            "server.request",
            &[
                ("session", FieldValue::U64(7)),
                ("core", FieldValue::Str("pool")),
                ("queue_wait_ns", FieldValue::U64(1234)),
                ("ratio", FieldValue::F64(0.25)),
                ("nan", FieldValue::F64(f64::NAN)),
                ("ok", FieldValue::Bool(true)),
                ("note", FieldValue::Str("quote \" and \n newline")),
                ("delta", FieldValue::I64(-3)),
            ],
        );
        crate::json::parse(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert!(line.contains("\"event\":\"server.request\""));
        assert!(line.contains("\"nan\":null"));
    }
}

//! A minimal JSON helper: string escaping for the emitter and a strict
//! validating parser for consumers that need to assert "this line is
//! JSON" without a serialization dependency (the CI trace check, the
//! emitter's own tests).

use std::fmt;

/// Appends `s` to `out` as a JSON string literal (with quotes),
/// escaping quotes, backslashes, and control characters.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` as a JSON number (`null` for NaN/infinity, which
/// JSON cannot represent).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
        // `{}` on a whole f64 prints no decimal point; keep it a number
        // either way (JSON allows integers), so nothing more to do.
    } else {
        out.push_str("null");
    }
}

/// Where [`parse`] rejected the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What the parser expected there.
    pub expected: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 128;

/// Validates that `input` is exactly one JSON value (object, array,
/// string, number, `true`, `false`, or `null`) with nothing but
/// whitespace around it. Structural validation only — no tree is built.
pub fn parse(input: &str) -> Result<(), ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            expected: "end of input",
        });
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), ParseError> {
    if depth > MAX_DEPTH {
        return Err(ParseError {
            at: *pos,
            expected: "shallower nesting",
        });
    }
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos, depth),
        Some(b'[') => array(bytes, pos, depth),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        _ => Err(ParseError {
            at: *pos,
            expected: "a JSON value",
        }),
    }
}

fn object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), ParseError> {
    *pos += 1; // {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => {
                return Err(ParseError {
                    at: *pos,
                    expected: "',' or '}'",
                })
            }
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), ParseError> {
    *pos += 1; // [
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => {
                return Err(ParseError {
                    at: *pos,
                    expected: "',' or ']'",
                })
            }
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), ParseError> {
    expect(bytes, pos, b'"')?;
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(ParseError {
                                        at: *pos,
                                        expected: "four hex digits",
                                    })
                                }
                            }
                        }
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            expected: "a valid escape",
                        })
                    }
                }
            }
            Some(c) if *c >= 0x20 => *pos += 1,
            _ => {
                return Err(ParseError {
                    at: *pos,
                    expected: "a string character or closing quote",
                })
            }
        }
    }
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    digits(bytes, pos)?;
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        digits(bytes, pos)?;
    }
    if let Some(b'e' | b'E') = bytes.get(*pos) {
        *pos += 1;
        if let Some(b'+' | b'-') = bytes.get(*pos) {
            *pos += 1;
        }
        digits(bytes, pos)?;
    }
    Ok(())
}

fn digits(bytes: &[u8], pos: &mut usize) -> Result<(), ParseError> {
    let start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == start {
        return Err(ParseError {
            at: *pos,
            expected: "a digit",
        });
    }
    Ok(())
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError {
            at: *pos,
            expected: match want {
                b':' => "':'",
                b'"' => "'\"'",
                _ => "a structural character",
            },
        })
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &'static [u8]) -> Result<(), ParseError> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(ParseError {
            at: *pos,
            expected: "a JSON literal",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_lines() {
        for line in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"ts_us":1,"event":"x","nested":{"a":[1,2,{"b":"c"}]},"ok":true}"#,
            r#""plain \"escaped\" string é""#,
            "  {\"a\":1}  ",
        ] {
            assert_eq!(parse(line), Ok(()), "{line}");
        }
    }

    #[test]
    fn rejects_invalid_lines() {
        for line in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{'a':1}",
            "{\"a\":01e}",
        ] {
            assert!(parse(line).is_err(), "{line:?} should be rejected");
        }
    }

    #[test]
    fn escaping_roundtrips_through_the_parser() {
        let mut out = String::new();
        escape_into(&mut out, "he said \"hi\"\n\ttab\\slash\u{1}");
        assert_eq!(parse(&out), Ok(()));
        let mut obj = String::from("{");
        escape_into(&mut obj, "key");
        obj.push(':');
        push_f64(&mut obj, 1.5);
        obj.push(',');
        escape_into(&mut obj, "nan");
        obj.push(':');
        push_f64(&mut obj, f64::NAN);
        obj.push('}');
        assert_eq!(parse(&obj), Ok(()));
    }
}

//! The named instrument registry and its typed, mergeable snapshot.
//!
//! Registration takes a mutex, so callers on hot paths resolve their
//! instruments **once** (e.g. into a `OnceLock`-cached struct) and then
//! mutate through the returned `Arc` — the registry lock is never on a
//! request path. Names are dotted lowercase (`server.handle_ns`); the
//! `_ns` suffix marks nanosecond histograms.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// A set of named instruments. Most code uses the process-wide
/// [`global`] registry; embedders can carry private ones.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every registered instrument, names in
    /// sorted order.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry every layer publishes into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand for [`global()`](global)`.counter(name)`.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand for [`global()`](global)`.gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand for [`global()`](global)`.histogram(name)`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// A typed, point-in-time copy of a [`Registry`]: plain data, safe to
/// ship over the wire, diff against an earlier copy, or merge with a
/// sibling thread's. Entries are `(name, value)` pairs sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The named counter's value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// The named gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        lookup(&self.gauges, name).copied()
    }

    /// The named histogram's snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }

    /// Folds another snapshot in: counters and histogram observations
    /// add; gauges (point-in-time levels) sum as well, which is the
    /// right reading for per-thread shards of one logical level.
    pub fn merge(&mut self, other: &Snapshot) {
        merge_with(&mut self.counters, &other.counters, |a, b| {
            *a = a.saturating_add(*b)
        });
        merge_with(&mut self.gauges, &other.gauges, |a, b| {
            *a = a.saturating_add(*b)
        });
        merge_with(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
    }

    /// What happened between `earlier` (a prior snapshot of the same
    /// registry) and this one: counters and histogram counts subtract
    /// exactly; gauges keep this snapshot's level (levels are not
    /// subtractable); histogram `min`/`max` are window-local estimates
    /// from the delta's occupied buckets (≤3.2% bucket resolution — see
    /// [`HistogramSnapshot::minus`]).
    pub fn minus(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                let old = lookup(&earlier.counters, name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(old))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let delta = match lookup(&earlier.histograms, name) {
                    Some(old) => h.minus(old),
                    None => h.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}

fn lookup<'a, T>(entries: &'a [(String, T)], name: &str) -> Option<&'a T> {
    entries
        .binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|i| &entries[i].1)
}

fn merge_with<T: Clone>(
    into: &mut Vec<(String, T)>,
    from: &[(String, T)],
    fold: impl Fn(&mut T, &T),
) {
    for (name, value) in from {
        match into.binary_search_by(|(n, _)| n.cmp(name)) {
            Ok(i) => fold(&mut into[i].1, value),
            Err(i) => into.insert(i, (name.clone(), value.clone())),
        }
    }
}

/// Human-readable dump: one line per instrument, histograms with
/// count/mean/p50/p90/p99/max. This is what the REPL's `metrics`
/// command prints.
impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no instruments registered)");
        }
        for (name, v) in &self.counters {
            writeln!(f, "{name:<40} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "{name:<40} {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "{name:<40} n={} mean={:.0} p50={} p90={} p99={} max={}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_hands_out_shared_instruments() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x.hits").get(), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_lookup_merge_and_minus() {
        let r = Registry::new();
        r.counter("a.n").add(10);
        r.gauge("a.level").add(4);
        r.histogram("a.lat_ns").record_always(100);
        let before = r.snapshot();
        r.counter("a.n").add(5);
        r.histogram("a.lat_ns").record_always(200);
        let after = r.snapshot();

        assert_eq!(after.counter("a.n"), Some(15));
        assert_eq!(after.gauge("a.level"), Some(4));
        assert_eq!(after.histogram("a.lat_ns").unwrap().count, 2);
        assert_eq!(after.counter("missing"), None);

        let delta = after.minus(&before);
        assert_eq!(delta.counter("a.n"), Some(5));
        assert_eq!(delta.histogram("a.lat_ns").unwrap().count, 1);

        let mut merged = before.clone();
        merged.merge(&delta);
        assert_eq!(merged.counter("a.n"), after.counter("a.n"));
        assert_eq!(
            merged.histogram("a.lat_ns").unwrap().count,
            after.histogram("a.lat_ns").unwrap().count
        );
        assert!(!format!("{after}").is_empty());
    }
}

//! # co-obs — the observability core
//!
//! A dependency-light (std-only) metrics and structured-trace layer
//! shared by every crate in the workspace. Two halves:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) in a named
//!   [`Registry`]: every mutation is a relaxed atomic — no locks on any
//!   hot path — and the whole registry exports as a typed, mergeable,
//!   diffable [`Snapshot`]. Histograms are HDR-style log-bucketed
//!   (exact below 32, 32 sub-buckets per octave above, ≈3.2% relative
//!   quantile error, exact `min`/`max`/`sum`/`count`).
//! - **Tracing** ([`emit`], [`warn`]): a JSON-lines span/event emitter
//!   gated by `CO_TRACE`. Off (the default) it costs one relaxed load;
//!   on, each event is one JSON object per line to stderr or a file.
//!
//! Knobs: `CO_METRICS` (default on; `0`/`off`/`false` disable gated
//! recording) and `CO_TRACE` (unset/`0` off, `1`/`stderr` to stderr,
//! anything else an append-mode file path).
//!
//! Hot-path pattern — resolve instruments once, mutate through `Arc`s:
//!
//! ```
//! use co_obs::{Counter, Histogram};
//! use std::sync::{Arc, OnceLock};
//!
//! struct Instruments {
//!     requests: Arc<Counter>,
//!     latency_ns: Arc<Histogram>,
//! }
//!
//! fn instruments() -> &'static Instruments {
//!     static CELL: OnceLock<Instruments> = OnceLock::new();
//!     CELL.get_or_init(|| Instruments {
//!         requests: co_obs::counter("doc.requests"),
//!         latency_ns: co_obs::histogram("doc.latency_ns"),
//!     })
//! }
//!
//! instruments().requests.inc();
//! instruments().latency_ns.record(1_500);
//! let snap = co_obs::global().snapshot();
//! assert_eq!(snap.counter("doc.requests"), Some(1));
//! assert_eq!(snap.histogram("doc.latency_ns").unwrap().quantile(1.0), 1_500);
//! ```

pub mod json;
mod metrics;
mod registry;
mod trace;

pub use metrics::{
    bucket_bounds, bucket_index, metrics_enabled, set_metrics_enabled, Counter, Gauge, Histogram,
    HistogramSnapshot, NUM_BUCKETS, SUB_BUCKET_BITS,
};
pub use registry::{counter, gauge, global, histogram, Registry, Snapshot};
pub use trace::{emit, set_trace_output, trace_enabled, warn, FieldValue, TraceOutput};

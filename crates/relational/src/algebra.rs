//! The classical (monotone fragment plus difference) relational algebra
//! over flat relations — the baseline the paper's §4 examples are phrased
//! against.

use crate::{RelSchema, Relation, RelationalError, Row};
use co_object::{Atom, Attr};

/// σ — selection by an arbitrary row predicate.
pub fn select(r: &Relation, pred: impl Fn(&Relation, &Row) -> bool) -> Relation {
    let mut out = Relation::empty(r.schema().clone());
    for row in r.rows() {
        if pred(r, row) {
            out.insert(row.clone()).expect("same schema");
        }
    }
    out
}

/// σ_{attr = value} — equality selection.
pub fn select_eq(r: &Relation, attr: Attr, value: &Atom) -> Result<Relation, RelationalError> {
    let pos = r.schema().position(attr)?;
    Ok(select(r, |_, row| &row[pos] == value))
}

/// π — projection onto `attrs` (duplicates removed by set semantics).
pub fn project(r: &Relation, attrs: &[Attr]) -> Result<Relation, RelationalError> {
    let positions: Result<Vec<usize>, _> = attrs.iter().map(|a| r.schema().position(*a)).collect();
    let positions = positions?;
    let schema = RelSchema::new(attrs.iter().copied())?;
    let mut out = Relation::empty(schema);
    for row in r.rows() {
        out.insert(positions.iter().map(|&i| row[i].clone()).collect())
            .expect("schema arity matches positions");
    }
    Ok(out)
}

/// ρ — attribute renaming. `pairs` maps old names to new names.
pub fn rename(r: &Relation, pairs: &[(Attr, Attr)]) -> Result<Relation, RelationalError> {
    let new_attrs: Vec<Attr> = r
        .schema()
        .attrs()
        .iter()
        .map(|a| {
            pairs
                .iter()
                .find(|(old, _)| old == a)
                .map(|(_, new)| *new)
                .unwrap_or(*a)
        })
        .collect();
    // Validate that every renamed source exists.
    for (old, _) in pairs {
        r.schema().position(*old)?;
    }
    let schema = RelSchema::new(new_attrs)?;
    Relation::new(schema, r.rows().cloned())
}

/// ∪ — union of schema-compatible relations.
pub fn union(l: &Relation, r: &Relation) -> Result<Relation, RelationalError> {
    check_same_attrs("union", l, r)?;
    let reordered = align(r, l.schema())?;
    let mut out = l.clone();
    for row in reordered.rows() {
        out.insert(row.clone()).expect("aligned schema");
    }
    Ok(out)
}

/// ∩ — intersection of schema-compatible relations.
pub fn intersect(l: &Relation, r: &Relation) -> Result<Relation, RelationalError> {
    check_same_attrs("intersection", l, r)?;
    let reordered = align(r, l.schema())?;
    Ok(select(l, |_, row| reordered.contains(row)))
}

/// − — difference of schema-compatible relations. Present for baseline
/// completeness; **not** expressible in the (monotone) calculus, which the
/// translation layer reports explicitly.
pub fn difference(l: &Relation, r: &Relation) -> Result<Relation, RelationalError> {
    check_same_attrs("difference", l, r)?;
    let reordered = align(r, l.schema())?;
    Ok(select(l, |_, row| !reordered.contains(row)))
}

/// × — cartesian product; schemas must be disjoint.
pub fn product(l: &Relation, r: &Relation) -> Result<Relation, RelationalError> {
    for a in r.schema().attrs() {
        if l.schema().attrs().contains(a) {
            return Err(RelationalError::SchemaMismatch {
                operation: "product (overlapping schemas)",
                left: l.schema().to_string(),
                right: r.schema().to_string(),
            });
        }
    }
    let schema = RelSchema::new(l.schema().attrs().iter().chain(r.schema().attrs()).copied())?;
    let mut out = Relation::empty(schema);
    for lrow in l.rows() {
        for rrow in r.rows() {
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            out.insert(row).expect("concatenated arity");
        }
    }
    Ok(out)
}

/// ⋈_{l.a = r.b} — equi-join on the given attribute pairs (hash join).
/// The result schema is `l`'s attributes followed by `r`'s attributes that
/// are not join targets; join pairs with equal names keep one copy.
pub fn equi_join(
    l: &Relation,
    r: &Relation,
    on: &[(Attr, Attr)],
) -> Result<Relation, RelationalError> {
    let l_pos: Result<Vec<usize>, _> = on.iter().map(|(a, _)| l.schema().position(*a)).collect();
    let r_pos: Result<Vec<usize>, _> = on.iter().map(|(_, b)| r.schema().position(*b)).collect();
    let (l_pos, r_pos) = (l_pos?, r_pos?);

    // Right attributes kept in the output: everything not a join target.
    let kept: Vec<usize> = (0..r.schema().arity())
        .filter(|i| !r_pos.contains(i))
        .collect();
    let schema = RelSchema::new(
        l.schema()
            .attrs()
            .iter()
            .copied()
            .chain(kept.iter().map(|&i| r.schema().attrs()[i])),
    )?;

    // Build the hash table on the smaller side — here, always on `r` for
    // simplicity; the benchmarks compare this against the calculus join.
    let mut table: rustc_hash::FxHashMap<Vec<Atom>, Vec<&Row>> = rustc_hash::FxHashMap::default();
    for row in r.rows() {
        let key: Vec<Atom> = r_pos.iter().map(|&i| row[i].clone()).collect();
        table.entry(key).or_default().push(row);
    }

    let mut out = Relation::empty(schema);
    for lrow in l.rows() {
        let key: Vec<Atom> = l_pos.iter().map(|&i| lrow[i].clone()).collect();
        if let Some(matches) = table.get(&key) {
            for rrow in matches {
                let mut row = lrow.clone();
                row.extend(kept.iter().map(|&i| rrow[i].clone()));
                out.insert(row).expect("join arity");
            }
        }
    }
    Ok(out)
}

/// ⋈ — natural join (equi-join on all common attributes; product when the
/// schemas are disjoint).
pub fn natural_join(l: &Relation, r: &Relation) -> Result<Relation, RelationalError> {
    let common = l.schema().common(r.schema());
    if common.is_empty() {
        return product(l, r);
    }
    let on: Vec<(Attr, Attr)> = common.iter().map(|a| (*a, *a)).collect();
    equi_join(l, r, &on)
}

fn check_same_attrs(
    operation: &'static str,
    l: &Relation,
    r: &Relation,
) -> Result<(), RelationalError> {
    if l.schema().same_attrs(r.schema()) {
        Ok(())
    } else {
        Err(RelationalError::SchemaMismatch {
            operation,
            left: l.schema().to_string(),
            right: r.schema().to_string(),
        })
    }
}

/// Reorders `r`'s columns to match `target`'s attribute order.
fn align(r: &Relation, target: &RelSchema) -> Result<Relation, RelationalError> {
    if r.schema() == target {
        return Ok(r.clone());
    }
    let positions: Result<Vec<usize>, _> = target
        .attrs()
        .iter()
        .map(|a| r.schema().position(*a))
        .collect();
    let positions = positions?;
    let mut out = Relation::empty(target.clone());
    for row in r.rows() {
        out.insert(positions.iter().map(|&i| row[i].clone()).collect())
            .expect("aligned arity");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::int_relation;

    #[test]
    fn selection() {
        let r = int_relation(["a", "b"], [[1, 10], [2, 20], [3, 10]]);
        let s = select_eq(&r, Attr::new("b"), &Atom::Int(10)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(select_eq(&r, Attr::new("z"), &Atom::Int(0)).is_err());
    }

    #[test]
    fn projection_removes_duplicates() {
        let r = int_relation(["a", "b"], [[1, 10], [1, 20], [2, 10]]);
        let p = project(&r, &[Attr::new("a")]).unwrap();
        assert_eq!(p.len(), 2);
        let p2 = project(&r, &[Attr::new("b"), Attr::new("a")]).unwrap();
        assert_eq!(p2.schema().attrs()[0], Attr::new("b"));
        assert_eq!(p2.len(), 3);
    }

    #[test]
    fn renaming() {
        let r = int_relation(["a", "b"], [[1, 2]]);
        let rn = rename(&r, &[(Attr::new("a"), Attr::new("x"))]).unwrap();
        assert_eq!(rn.schema().attrs(), &[Attr::new("x"), Attr::new("b")]);
        assert!(rename(&r, &[(Attr::new("z"), Attr::new("w"))]).is_err());
        // Renaming onto an existing name is a duplicate-schema error.
        assert!(rename(&r, &[(Attr::new("a"), Attr::new("b"))]).is_err());
    }

    #[test]
    fn union_intersection_difference_respect_column_order() {
        let l = int_relation(["a", "b"], [[1, 2], [3, 4]]);
        // Same attributes, different order.
        let r = int_relation(["b", "a"], [[2, 1], [9, 8]]);
        let u = union(&l, &r).unwrap();
        assert_eq!(u.len(), 3); // (1,2) present in both after alignment.
        let i = intersect(&l, &r).unwrap();
        assert_eq!(i.len(), 1);
        let d = difference(&l, &r).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains(&vec![Atom::Int(3), Atom::Int(4)]));
        let bad = int_relation(["x"], [[1]]);
        assert!(union(&l, &bad).is_err());
    }

    #[test]
    fn product_and_disjointness() {
        let l = int_relation(["a"], [[1], [2]]);
        let r = int_relation(["b"], [[10], [20], [30]]);
        let p = product(&l, &r).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.schema().arity(), 2);
        assert!(product(&l, &l).is_err());
    }

    #[test]
    fn equi_join_matches_paper_example() {
        // Example 4.2(3): R1(a, b) ⋈_{b=c} R2(c, d) projected naturally.
        let r1 = int_relation(["a", "b"], [[1, 10], [2, 20], [3, 30]]);
        let r2 = int_relation(["c", "d"], [[10, 100], [20, 200], [99, 999]]);
        let j = equi_join(&r1, &r2, &[(Attr::new("b"), Attr::new("c"))]).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(
            j.schema().attrs(),
            &[Attr::new("a"), Attr::new("b"), Attr::new("d")]
        );
        let ad = project(&j, &[Attr::new("a"), Attr::new("d")]).unwrap();
        assert!(ad.contains(&vec![Atom::Int(1), Atom::Int(100)]));
        assert!(ad.contains(&vec![Atom::Int(2), Atom::Int(200)]));
    }

    #[test]
    fn natural_join_on_common_attributes() {
        let l = int_relation(["a", "b"], [[1, 10], [2, 20]]);
        let r = int_relation(["b", "c"], [[10, 7], [10, 8], [30, 9]]);
        let j = natural_join(&l, &r).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(
            j.schema().attrs(),
            &[Attr::new("a"), Attr::new("b"), Attr::new("c")]
        );
        // Disjoint schemas degrade to a product.
        let d = int_relation(["z"], [[5]]);
        assert_eq!(natural_join(&l, &d).unwrap().len(), 2);
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let l = int_relation(["a", "b"], [[1, 10]]);
        let r = int_relation(["c", "d"], [[99, 0]]);
        let j = equi_join(&l, &r, &[(Attr::new("b"), Attr::new("c"))]).unwrap();
        assert!(j.is_empty());
    }
}

//! Translating [`Query`] plans into calculus rule programs.
//!
//! Every monotone query operator corresponds to a rule shape from the
//! paper's Example 4.2:
//!
//! | operator | rule (paper example) |
//! |---|---|
//! | selection + projection | `[q: {[c: X]}] :- [r1: {[a: X, b: b]}]` (4.2(1)) |
//! | join | `[q: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]` (4.2(3)) |
//! | renaming | 4.2(4) |
//! | intersection | `[q: {X}] :- [r1: {X}, r2: {X}]` (4.2(5)) |
//! | union | two rules with the same head |
//!
//! Each query node materializes an intermediate relation `q__N`; the root
//! lands in [`OUTPUT`]. Difference is non-monotone and is reported as
//! [`RelationalError::NotTranslatable`] — the calculus extends *Horn*
//! clauses, which have no negation.
//!
//! [`run_query_via_calculus`] is the executable bridge: encode the flat
//! database as a complex object, run the translated program to its closure,
//! decode the output relation. The differential tests assert it agrees with
//! the flat algebra on every translatable query.

use crate::{
    decode_relation, encode_database, Database, Query, RelSchema, Relation, RelationalError,
};
use co_calculus::{Formula, Program, Rule, Var};
use co_engine::Engine;
use co_object::{Attr, Object};

/// The attribute under which the translated query's result appears.
pub const OUTPUT: &str = "q__out";

struct Translator<'a> {
    db: &'a Database,
    rules: Vec<Rule>,
    counter: usize,
}

impl<'a> Translator<'a> {
    fn fresh_name(&mut self) -> String {
        let n = format!("q__{}", self.counter);
        self.counter += 1;
        n
    }

    /// A tuple formula binding one fresh variable per attribute; returns
    /// the formula together with the per-attribute variables.
    fn row_pattern(schema: &RelSchema, prefix: &str) -> (Formula, Vec<(Attr, Var)>) {
        let vars: Vec<(Attr, Var)> = schema
            .attrs()
            .iter()
            .map(|a| (*a, Var::new(format!("{prefix}_{}", a.name()))))
            .collect();
        let f = Formula::tuple(vars.iter().map(|(a, v)| (*a, Formula::Var(*v))))
            .expect("schema attributes are distinct");
        (f, vars)
    }

    /// Wraps a row formula into `[rel: {row}]`.
    fn in_relation(name: &str, row: Formula) -> Formula {
        Formula::tuple([(Attr::new(name), Formula::set([row]))]).expect("single attribute")
    }

    /// Emits rules computing `q` into a fresh relation; returns its name.
    fn translate(&mut self, q: &Query) -> Result<String, RelationalError> {
        let schema = q.schema(self.db)?;
        let out = self.fresh_name();
        match q {
            Query::Rel(name) => {
                let (row, _) = Self::row_pattern(&schema, "V");
                self.push_rule(&out, row.clone(), Self::in_relation(name, row));
            }
            Query::SelectEq { input, attr, value } => {
                let src = self.translate(input)?;
                let (_, vars) = Self::row_pattern(&schema, "V");
                let body_row = Formula::tuple(vars.iter().map(|(a, v)| {
                    if a == attr {
                        (*a, Formula::Atom(value.clone()))
                    } else {
                        (*a, Formula::Var(*v))
                    }
                }))
                .expect("distinct attrs");
                self.push_rule(&out, body_row.clone(), Self::in_relation(&src, body_row));
            }
            Query::Project { input, attrs } => {
                let src = self.translate(input)?;
                let in_schema = input.schema(self.db)?;
                let (body_row, vars) = Self::row_pattern(&in_schema, "V");
                let head_row = Formula::tuple(attrs.iter().map(|a| {
                    let v = vars
                        .iter()
                        .find(|(b, _)| b == a)
                        .expect("projection attrs checked by schema()")
                        .1;
                    (*a, Formula::Var(v))
                }))
                .expect("distinct attrs");
                self.push_rule(&out, head_row, Self::in_relation(&src, body_row));
            }
            Query::Rename { input, pairs } => {
                let src = self.translate(input)?;
                let in_schema = input.schema(self.db)?;
                let (body_row, vars) = Self::row_pattern(&in_schema, "V");
                let head_row = Formula::tuple(vars.iter().map(|(a, v)| {
                    let renamed = pairs
                        .iter()
                        .find(|(old, _)| old == a)
                        .map(|(_, new)| *new)
                        .unwrap_or(*a);
                    (renamed, Formula::Var(*v))
                }))
                .expect("renaming checked by schema()");
                self.push_rule(&out, head_row, Self::in_relation(&src, body_row));
            }
            Query::Join { left, right, on } => {
                let lsrc = self.translate(left)?;
                let rsrc = self.translate(right)?;
                let ls = left.schema(self.db)?;
                let rs = right.schema(self.db)?;
                let (_, lvars) = Self::row_pattern(&ls, "L");
                let (_, rvars0) = Self::row_pattern(&rs, "R");
                // Join attributes on the right share the left variable.
                let rvars: Vec<(Attr, Var)> = rvars0
                    .iter()
                    .map(|(a, v)| match on.iter().find(|(_, b)| b == a) {
                        Some((la, _)) => {
                            let lv = lvars
                                .iter()
                                .find(|(b, _)| b == la)
                                .expect("join attrs checked by schema()")
                                .1;
                            (*a, lv)
                        }
                        None => (*a, *v),
                    })
                    .collect();
                let l_row = Formula::tuple(lvars.iter().map(|(a, v)| (*a, Formula::Var(*v))))
                    .expect("distinct");
                let r_row = Formula::tuple(rvars.iter().map(|(a, v)| (*a, Formula::Var(*v))))
                    .expect("distinct");
                let body = Formula::tuple([
                    (Attr::new(&lsrc), Formula::set([l_row])),
                    (Attr::new(&rsrc), Formula::set([r_row])),
                ])
                .expect("fresh names are distinct");
                // Head: left attrs then kept right attrs (matches
                // algebra::equi_join's output schema).
                let r_targets: Vec<Attr> = on.iter().map(|(_, b)| *b).collect();
                let head_row = Formula::tuple(
                    lvars.iter().map(|(a, v)| (*a, Formula::Var(*v))).chain(
                        rvars
                            .iter()
                            .filter(|(a, _)| !r_targets.contains(a))
                            .map(|(a, v)| (*a, Formula::Var(*v))),
                    ),
                )
                .expect("join output schema checked");
                self.push_rule(&out, head_row, body);
            }
            Query::Intersect { left, right } => {
                let lsrc = self.translate(left)?;
                let rsrc = self.translate(right)?;
                // Paper Example 4.2(5): shared variables across members —
                // generalized to per-attribute variables so column order
                // does not matter.
                let (_, vars) = Self::row_pattern(&schema, "V");
                let row = Formula::tuple(vars.iter().map(|(a, v)| (*a, Formula::Var(*v))))
                    .expect("distinct");
                let body = Formula::tuple([
                    (Attr::new(&lsrc), Formula::set([row.clone()])),
                    (Attr::new(&rsrc), Formula::set([row.clone()])),
                ])
                .expect("fresh names distinct");
                self.push_rule(&out, row, body);
            }
            Query::Union { left, right } => {
                let lsrc = self.translate(left)?;
                let rsrc = self.translate(right)?;
                let (row, _) = Self::row_pattern(&schema, "V");
                self.push_rule(&out, row.clone(), Self::in_relation(&lsrc, row.clone()));
                self.push_rule(&out, row.clone(), Self::in_relation(&rsrc, row));
            }
            Query::Product { left, right } => {
                let lsrc = self.translate(left)?;
                let rsrc = self.translate(right)?;
                let ls = left.schema(self.db)?;
                let rs = right.schema(self.db)?;
                let (l_row, lvars) = Self::row_pattern(&ls, "L");
                let (r_row, rvars) = Self::row_pattern(&rs, "R");
                let body = Formula::tuple([
                    (Attr::new(&lsrc), Formula::set([l_row])),
                    (Attr::new(&rsrc), Formula::set([r_row])),
                ])
                .expect("fresh names distinct");
                let head_row = Formula::tuple(
                    lvars
                        .iter()
                        .chain(rvars.iter())
                        .map(|(a, v)| (*a, Formula::Var(*v))),
                )
                .expect("product schemas disjoint (checked)");
                self.push_rule(&out, head_row, body);
            }
            Query::Difference { .. } => {
                return Err(RelationalError::NotTranslatable(
                    "difference requires negation, which Horn clauses lack",
                ));
            }
        }
        Ok(out)
    }

    fn push_rule(&mut self, out: &str, head_row: Formula, body: Formula) {
        let head =
            Formula::tuple([(Attr::new(out), Formula::set([head_row]))]).expect("single attribute");
        self.rules
            .push(Rule::new(head, body).expect("head vars come from the body by construction"));
    }
}

/// Translates `query` into a rule program whose closure materializes the
/// result under the [`OUTPUT`] attribute.
pub fn translate_query(db: &Database, query: &Query) -> Result<Program, RelationalError> {
    let mut t = Translator {
        db,
        rules: Vec::new(),
        counter: 0,
    };
    let root = t.translate(query)?;
    // Copy the root intermediate into the fixed output name.
    let schema = query.schema(db)?;
    let (row, _) = Translator::row_pattern(&schema, "V");
    t.push_rule(OUTPUT, row.clone(), Translator::in_relation(&root, row));
    Ok(Program::from_rules(t.rules))
}

/// Runs `query` through the calculus: encode → translate → fixpoint →
/// decode. An absent output attribute (no derivations) decodes as an empty
/// relation.
pub fn run_query_via_calculus(db: &Database, query: &Query) -> Result<Relation, RelationalError> {
    let program = translate_query(db, query)?;
    let encoded = encode_database(db);
    let outcome = Engine::new(program)
        .run(&encoded)
        .map_err(|e| RelationalError::NotFlat(format!("fixpoint evaluation failed: {e}")))?;
    match outcome.database.dot(OUTPUT) {
        Object::Bottom => Ok(Relation::empty(query.schema(db)?)),
        o => {
            let decoded = decode_relation(o)?;
            // Align the decoded column order with the query's schema.
            let target = query.schema(db)?;
            if decoded.schema().same_attrs(&target) {
                crate::algebra::project(&decoded, target.attrs())
            } else {
                Err(RelationalError::SchemaMismatch {
                    operation: "calculus result schema",
                    left: decoded.schema().to_string(),
                    right: target.to_string(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::int_relation;
    use co_object::Atom;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert("r1", int_relation(["a", "b"], [[1, 10], [2, 20], [3, 10]]));
        db.insert(
            "r2",
            int_relation(["c", "d"], [[10, 100], [20, 200], [99, 999]]),
        );
        db
    }

    fn check(q: Query) {
        let db = db();
        let direct = q.eval(&db).unwrap();
        let via_calculus = run_query_via_calculus(&db, &q).unwrap();
        assert_eq!(direct, via_calculus, "query {q:?}");
    }

    #[test]
    fn base_relation_round_trips() {
        check(Query::rel("r1"));
    }

    #[test]
    fn selection_translates() {
        check(Query::rel("r1").select_eq("b", 10));
    }

    #[test]
    fn selection_with_no_matches_translates() {
        check(Query::rel("r1").select_eq("b", 777));
    }

    #[test]
    fn projection_translates() {
        check(Query::rel("r1").project(["a"]));
        check(Query::rel("r1").project(["b"]));
    }

    #[test]
    fn renaming_translates() {
        check(Query::rel("r1").rename([("a", "x"), ("b", "y")]));
    }

    #[test]
    fn join_translates() {
        check(Query::rel("r1").join(Query::rel("r2"), [("b", "c")]));
    }

    #[test]
    fn intersection_translates() {
        check(
            Query::rel("r1")
                .project(["b"])
                .rename([("b", "k")])
                .intersect(Query::rel("r2").project(["c"]).rename([("c", "k")])),
        );
    }

    #[test]
    fn union_translates() {
        check(
            Query::rel("r1")
                .project(["a"])
                .union(Query::rel("r2").project(["d"]).rename([("d", "a")])),
        );
    }

    #[test]
    fn product_translates() {
        check(
            Query::rel("r1")
                .project(["a"])
                .product(Query::rel("r2").project(["c"])),
        );
    }

    #[test]
    fn composed_pipeline_translates() {
        check(
            Query::rel("r1")
                .join(Query::rel("r2"), [("b", "c")])
                .select_eq("d", 100)
                .project(["a", "d"])
                .rename([("d", "result")]),
        );
    }

    #[test]
    fn difference_is_not_translatable() {
        let q = Query::rel("r1").difference(Query::rel("r1"));
        assert!(matches!(
            translate_query(&db(), &q),
            Err(RelationalError::NotTranslatable(_))
        ));
    }

    #[test]
    fn translated_program_shape_matches_paper_examples() {
        // One rule per node plus the output copy.
        let q = Query::rel("r1").select_eq("b", 10);
        let p = translate_query(&db(), &q).unwrap();
        assert_eq!(p.len(), 3); // rel copy, select, output copy.
        let text = p.to_string();
        assert!(text.contains("q__out"));
        assert!(text.contains("b: 10"));
    }

    #[test]
    fn string_atoms_translate_too() {
        let mut db = Database::new();
        let schema = crate::RelSchema::new(["name", "city"]).unwrap();
        let rel = Relation::new(
            schema,
            [
                vec![Atom::str("john"), Atom::str("austin")],
                vec![Atom::str("mary"), Atom::str("paris")],
            ],
        )
        .unwrap();
        db.insert("people", rel);
        let q = Query::rel("people").select_eq("city", Atom::str("austin"));
        let direct = q.eval(&db).unwrap();
        let via = run_query_via_calculus(&db, &q).unwrap();
        assert_eq!(direct, via);
        assert_eq!(direct.len(), 1);
    }
}

//! NF² (nested relational) operators: `nest` and `unnest`.
//!
//! The paper's §1 cites Jaeschke & Schek \[6\] and Schek & Scholl \[12\] as the
//! non-first-normal-form lineage it generalizes; `nest`/`unnest` are those
//! models' signature operators, implemented here directly over complex
//! objects (sets of tuples with possibly set-valued attributes). They also
//! realize part of the paper's §5 future-work item on an *algebra* of
//! complex objects.
//!
//! - [`unnest`] `µ_a(r)`: replace each tuple having a set-valued attribute
//!   `a` by one tuple per element of that set;
//! - [`nest`] `ν_a(r)`: group tuples by all attributes except `a` and
//!   collect the `a`-values of each group into a set.
//!
//! `unnest(nest(r, a), a) = r` holds whenever every tuple of `r` has a
//! non-set value at `a` (checked by a property test); the converse fails in
//! general — nest is lossy on empty sets — exactly as in the literature.

use crate::RelationalError;
use co_object::{Attr, Object};
use std::collections::BTreeMap;

/// µ — unnests set-valued attribute `a`: each tuple `[…, a: {v1…vk}]`
/// becomes `k` tuples `[…, a: vi]`. Tuples with an empty set at `a`
/// disappear (standard NF² semantics).
pub fn unnest(r: &Object, a: impl Into<Attr>) -> Result<Object, RelationalError> {
    let a = a.into();
    let set = r
        .as_set()
        .ok_or_else(|| RelationalError::NotFlat(format!("unnest expects a set, got {r}")))?;
    let mut out: Vec<Object> = Vec::new();
    for e in set.iter() {
        let t = e
            .as_tuple()
            .ok_or_else(|| RelationalError::NotFlat(format!("non-tuple element {e}")))?;
        let inner = t.get(a);
        let inner_set = inner.as_set().ok_or_else(|| {
            RelationalError::NotFlat(format!(
                "attribute {a} of {e} is not set-valued (found {inner})"
            ))
        })?;
        for v in inner_set.iter() {
            out.push(e.with_attr(a, v.clone()).expect("element is a tuple"));
        }
    }
    Ok(Object::set(out))
}

/// ν — nests attribute `a`: tuples equal on all other attributes are
/// merged, their `a`-values collected into a set. Tuples lacking `a`
/// contribute an empty group (`a: {}`).
pub fn nest(r: &Object, a: impl Into<Attr>) -> Result<Object, RelationalError> {
    let a = a.into();
    let set = r
        .as_set()
        .ok_or_else(|| RelationalError::NotFlat(format!("nest expects a set, got {r}")))?;
    // Group by the tuple-without-a, in canonical object order.
    let mut groups: BTreeMap<Object, Vec<Object>> = BTreeMap::new();
    for e in set.iter() {
        if e.as_tuple().is_none() {
            return Err(RelationalError::NotFlat(format!("non-tuple element {e}")));
        }
        let key = e.without_attr(a).expect("element is a tuple");
        let value = e.dot(a).clone();
        let bucket = groups.entry(key).or_default();
        if !value.is_bottom() {
            bucket.push(value);
        }
    }
    Ok(Object::set(groups.into_iter().map(|(key, values)| {
        key.with_attr(a, Object::set(values))
            .expect("group key is a tuple")
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    /// The paper's Example 2.1 nested relation.
    fn nested_relation() -> Object {
        obj!({
            [name: peter, children: {max, susan}],
            [name: john, children: {mary, john, frank}],
            [name: mary, children: {}]
        })
    }

    #[test]
    fn unnest_paper_nested_relation() {
        let flat = unnest(&nested_relation(), "children").unwrap();
        assert_eq!(
            flat,
            obj!({
                [name: peter, children: max],
                [name: peter, children: susan],
                [name: john, children: mary],
                [name: john, children: john],
                [name: john, children: frank]
            })
        );
        // mary, with no children, disappears — the classic lossy case.
        assert_eq!(flat.as_set().unwrap().len(), 5);
    }

    #[test]
    fn nest_regroups() {
        let flat = obj!({
            [name: peter, children: max],
            [name: peter, children: susan],
            [name: john, children: mary]
        });
        let nested = nest(&flat, "children").unwrap();
        assert_eq!(
            nested,
            obj!({
                [name: peter, children: {max, susan}],
                [name: john, children: {mary}]
            })
        );
    }

    #[test]
    fn unnest_after_nest_is_identity_on_flat_relations() {
        let flat = obj!({
            [a: 1, b: 10],
            [a: 1, b: 20],
            [a: 2, b: 10]
        });
        let round = unnest(&nest(&flat, "b").unwrap(), "b").unwrap();
        assert_eq!(round, flat);
    }

    #[test]
    fn nest_after_unnest_loses_empty_groups() {
        let r = nested_relation();
        let round = nest(&unnest(&r, "children").unwrap(), "children").unwrap();
        // mary's empty group is gone.
        assert_eq!(
            round,
            obj!({
                [name: peter, children: {max, susan}],
                [name: john, children: {mary, john, frank}]
            })
        );
        assert_ne!(round, r);
    }

    #[test]
    fn nest_handles_missing_attribute_as_empty_group() {
        let r = obj!({[name: mary]});
        let nested = nest(&r, "children").unwrap();
        assert_eq!(nested, obj!({[name: mary, children: {}]}));
    }

    #[test]
    fn unnest_errors() {
        assert!(unnest(&obj!(5), "a").is_err());
        assert!(unnest(&obj!({ 5 }), "a").is_err());
        // Attribute is not set-valued.
        assert!(unnest(&obj!({[a: 1]}), "a").is_err());
        // Attribute missing entirely (⊥ is not a set).
        assert!(unnest(&obj!({[b: 1]}), "a").is_err());
    }

    #[test]
    fn nest_errors() {
        assert!(nest(&obj!(5), "a").is_err());
        assert!(nest(&obj!({ 5 }), "a").is_err());
    }

    #[test]
    fn nested_sets_of_tuples_unnest() {
        // Set-valued attributes may hold tuples, not just atoms.
        let r = obj!({[dept: cs, staff: {[n: ada], [n: alan]}]});
        let u = unnest(&r, "staff").unwrap();
        assert_eq!(
            u,
            obj!({
                [dept: cs, staff: [n: ada]],
                [dept: cs, staff: [n: alan]]
            })
        );
    }
}

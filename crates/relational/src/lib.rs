//! # co-relational — the flat relational baseline and NF² operators
//!
//! The paper motivates complex objects by the shortcomings of the flat
//! (first-normal-form) relational model (§1) and explains every §4 example
//! in relational terms (selection, projection, join, intersection). This
//! crate supplies that baseline as a real engine, plus the bridges between
//! the two worlds:
//!
//! - [`Relation`]/[`Database`] and [`algebra`] — a classical flat
//!   relational algebra (σ, π, ρ, ⋈, ∪, ∩, −, ×) with set semantics;
//! - [`encode_database`]/[`decode`](decode_relation) — the paper's "a relational
//!   database is an object" embedding, and its partial inverse;
//! - [`Query`] — a small logical plan language evaluable both directly and
//!   via translation to calculus rules ([`translate_query`]), which the
//!   differential tests use to validate the calculus against the algebra;
//! - [`nf2`] — `nest`/`unnest` from the non-first-normal-form lineage the
//!   paper cites (Jaeschke–Schek), working on complex objects directly;
//! - [`columnar`] — vectorized select/project/join/union over the dense
//!   column arenas of `co_object::columnar`, producing bit-identical
//!   canonical objects without the per-row decode/encode round trip.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algebra;
pub mod columnar;
mod database;
mod encode;
mod error;
pub mod nf2;
mod query;
mod relation;
mod translate;

pub use database::Database;
pub use encode::{decode_database, decode_relation, encode_database, encode_relation};
pub use error::RelationalError;
pub use query::Query;
pub use relation::{int_relation, RelSchema, Relation, Row};
pub use translate::{run_query_via_calculus, translate_query, OUTPUT};

//! Vectorized relational operators over columnar arenas — the fast path
//! the flat fragment takes around per-row interning.
//!
//! The plain [`algebra`](crate::algebra) path costs `decode → operate →
//! encode`: every input row is re-materialized as a `Vec<Atom>` and every
//! output row walks the interner. The operators here read the dense
//! columns of a [`ColumnarRel`] (built lazily and memoized per `NodeId`
//! by `co_object::columnar`) and only touch the store once, at the
//! boundary: results re-enter through the canonicalizing constructors
//! ([`rows_to_object`](co_object::columnar::rows_to_object) /
//! [`gather`](co_object::columnar::gather)), so the produced objects are
//! **bit-identical** — same `NodeId`s — to what the interned path builds.
//! The differential proptests in `tests/columnar_differential.rs` pin
//! that equivalence down operator by operator.
//!
//! Dispatch goes through a dense kernel table indexed by [`ColOp`] —
//! one function pointer per operator, no matching in the hot path.
//!
//! Sets that are not flat uniform relations (nested values, mixed
//! schemas, empty — an empty set has no schema to infer) are a
//! [`RelationalError::NotFlat`]; below the arena row threshold the
//! columns are built ad hoc without being cached, so the operators are
//! total over flat relations regardless of `CO_COLUMNAR_MIN_ROWS`.

use crate::{RelSchema, RelationalError};
use co_object::columnar::{self as col, ColumnarRel};
use co_object::{Atom, Attr, Object, Set};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// The vectorized operators, doubling as indices into the kernel table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColOp {
    /// σ_{attr = value} — equality selection.
    SelectEq = 0,
    /// π — projection (set semantics).
    Project = 1,
    /// ⋈ — natural join (product when schemas are disjoint).
    NaturalJoin = 2,
    /// ∪ — union of same-schema relations.
    Union = 3,
}

/// Uniform argument record every kernel receives; unused fields are
/// `None`/empty for the operators that don't take them.
struct KernelArgs<'k> {
    left: (&'k Set, &'k ColumnarRel),
    right: Option<(&'k Set, &'k ColumnarRel)>,
    attr: Option<Attr>,
    value: Option<&'k Atom>,
    attrs: &'k [Attr],
}

type Kernel = for<'k> fn(&KernelArgs<'k>) -> Result<Object, RelationalError>;

/// The dense operator table: `KERNELS[op as usize]` is the vectorized
/// implementation of `op`. Indexed, never matched.
static KERNELS: [Kernel; 4] = [k_select_eq, k_project, k_natural_join, k_union];

fn dispatch(op: ColOp, args: &KernelArgs<'_>) -> Result<Object, RelationalError> {
    KERNELS[op as usize](args)
}

/// The columnar image of `set`: the memoized arena when the set crosses
/// the row threshold, an uncached ad-hoc build below it.
fn arena(set: &Set) -> Result<Arc<ColumnarRel>, RelationalError> {
    if let Some(a) = col::arena_for(set) {
        return Ok(a);
    }
    col::build(set).map(Arc::new).ok_or_else(|| {
        RelationalError::NotFlat(format!(
            "set of {} elements is not a flat uniform relation",
            set.len()
        ))
    })
}

/// Renders a columnar schema the way [`RelSchema`] renders, so errors
/// read the same on both paths.
fn render_schema(attrs: &[Attr]) -> String {
    let mut s = String::from("(");
    for (i, a) in attrs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&a.to_string());
    }
    s.push(')');
    s
}

/// Sorted-merge union of two ascending attribute lists.
fn merge_schemas(l: &[Attr], r: &[Attr]) -> Vec<Attr> {
    let mut out = Vec::with_capacity(l.len() + r.len());
    let (mut i, mut j) = (0, 0);
    while i < l.len() && j < r.len() {
        match l[i].cmp(&r[j]) {
            std::cmp::Ordering::Less => {
                out.push(l[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(r[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(l[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&l[i..]);
    out.extend_from_slice(&r[j..]);
    out
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

fn k_select_eq(args: &KernelArgs<'_>) -> Result<Object, RelationalError> {
    let (set, cols) = args.left;
    let attr = args.attr.expect("select kernel takes an attribute");
    let value = args.value.expect("select kernel takes a value");
    let c = cols
        .column_of(attr)
        .ok_or_else(|| RelationalError::UnknownAttribute {
            attr,
            schema: render_schema(cols.schema()),
        })?;
    let column = cols.column(c);
    // One dense scan; matching rows turn back into the set's own interned
    // elements (an Arc bump each, no re-interning).
    let hits = (0..cols.rows()).filter(|&r| &column[r] == value);
    Ok(col::gather(set, hits))
}

fn k_project(args: &KernelArgs<'_>) -> Result<Object, RelationalError> {
    let (_, cols) = args.left;
    // Duplicate attributes are the same error the algebra path raises.
    RelSchema::new(args.attrs.iter().copied())?;
    let mut picked: Vec<(Attr, usize)> = args
        .attrs
        .iter()
        .map(|&a| {
            cols.column_of(a)
                .map(|c| (a, c))
                .ok_or_else(|| RelationalError::UnknownAttribute {
                    attr: a,
                    schema: render_schema(cols.schema()),
                })
        })
        .collect::<Result<_, _>>()?;
    // Canonical output order; projection is order-insensitive under set
    // semantics.
    picked.sort_by_key(|(a, _)| *a);
    let schema: Vec<Attr> = picked.iter().map(|(a, _)| *a).collect();
    // Dedup before re-entering the store so only distinct rows intern.
    let mut rows: FxHashSet<Vec<Atom>> = FxHashSet::default();
    for r in 0..cols.rows() {
        rows.insert(
            picked
                .iter()
                .map(|&(_, c)| cols.column(c)[r].clone())
                .collect(),
        );
    }
    Ok(col::rows_to_object(&schema, rows))
}

fn k_natural_join(args: &KernelArgs<'_>) -> Result<Object, RelationalError> {
    let (_, lc) = args.left;
    let (_, rc) = args.right.expect("join kernel takes a right relation");
    let common: Vec<(usize, usize)> = lc
        .schema()
        .iter()
        .enumerate()
        .filter_map(|(i, a)| rc.column_of(*a).map(|j| (i, j)))
        .collect();

    let schema = merge_schemas(lc.schema(), rc.schema());
    // Each output attribute reads from the left arena when present there
    // (join rows agree on common attributes), else from the right.
    let plan: Vec<(bool, usize)> = schema
        .iter()
        .map(|&a| match lc.column_of(a) {
            Some(c) => (true, c),
            None => (false, rc.column_of(a).expect("attr from one side")),
        })
        .collect();
    let emit = |li: usize, ri: usize| -> Vec<Atom> {
        plan.iter()
            .map(|&(from_left, c)| {
                if from_left {
                    lc.column(c)[li].clone()
                } else {
                    rc.column(c)[ri].clone()
                }
            })
            .collect()
    };

    let mut rows: Vec<Vec<Atom>> = Vec::new();
    if common.is_empty() {
        // Disjoint schemas: cartesian product.
        for li in 0..lc.rows() {
            for ri in 0..rc.rows() {
                rows.push(emit(li, ri));
            }
        }
    } else {
        // Hash join: build on the right, probe with the left.
        let mut table: FxHashMap<Vec<Atom>, Vec<usize>> = FxHashMap::default();
        for ri in 0..rc.rows() {
            let key: Vec<Atom> = common
                .iter()
                .map(|&(_, j)| rc.column(j)[ri].clone())
                .collect();
            table.entry(key).or_default().push(ri);
        }
        for li in 0..lc.rows() {
            let key: Vec<Atom> = common
                .iter()
                .map(|&(i, _)| lc.column(i)[li].clone())
                .collect();
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    rows.push(emit(li, ri));
                }
            }
        }
    }
    Ok(col::rows_to_object(&schema, rows))
}

fn k_union(args: &KernelArgs<'_>) -> Result<Object, RelationalError> {
    let (ls, lc) = args.left;
    let (rs, rc) = args.right.expect("union kernel takes a right relation");
    // Both schemas are in canonical order, so compatibility is slice
    // equality.
    if lc.schema() != rc.schema() {
        return Err(RelationalError::SchemaMismatch {
            operation: "union",
            left: render_schema(lc.schema()),
            right: render_schema(rc.schema()),
        });
    }
    // Same-schema flat rows need no column work at all: the union is the
    // element union, and the set constructor's flat fast path reduces it
    // by sort + dedup over interned pointers.
    Ok(Object::set(
        ls.elements().iter().chain(rs.elements()).cloned(),
    ))
}

// ---------------------------------------------------------------------------
// Public operators
// ---------------------------------------------------------------------------

/// σ_{attr = value} over a flat relation's columns. Returns the same
/// canonical object (same `NodeId`) as `decode → select_eq → encode`.
pub fn select_eq(set: &Set, attr: Attr, value: &Atom) -> Result<Object, RelationalError> {
    let cols = arena(set)?;
    dispatch(
        ColOp::SelectEq,
        &KernelArgs {
            left: (set, &cols),
            right: None,
            attr: Some(attr),
            value: Some(value),
            attrs: &[],
        },
    )
}

/// π over a flat relation's columns (set semantics; `attrs` order is
/// irrelevant to the canonical result). Bit-identical to the interned
/// path.
pub fn project(set: &Set, attrs: &[Attr]) -> Result<Object, RelationalError> {
    let cols = arena(set)?;
    dispatch(
        ColOp::Project,
        &KernelArgs {
            left: (set, &cols),
            right: None,
            attr: None,
            value: None,
            attrs,
        },
    )
}

/// ⋈ over two flat relations' columns: equi-join on all common
/// attributes, cartesian product when the schemas are disjoint.
/// Bit-identical to the interned path.
pub fn natural_join(l: &Set, r: &Set) -> Result<Object, RelationalError> {
    let lc = arena(l)?;
    let rc = arena(r)?;
    dispatch(
        ColOp::NaturalJoin,
        &KernelArgs {
            left: (l, &lc),
            right: Some((r, &rc)),
            attr: None,
            value: None,
            attrs: &[],
        },
    )
}

/// ∪ of two same-schema flat relations. Bit-identical to the interned
/// path.
pub fn union(l: &Set, r: &Set) -> Result<Object, RelationalError> {
    let lc = arena(l)?;
    let rc = arena(r)?;
    dispatch(
        ColOp::Union,
        &KernelArgs {
            left: (l, &lc),
            right: Some((r, &rc)),
            attr: None,
            value: None,
            attrs: &[],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algebra, decode_relation, encode_relation, relation::int_relation};

    /// The interned reference path: decode, run `f` on the relation(s),
    /// re-encode.
    fn via_algebra(
        o: &Object,
        f: impl Fn(&crate::Relation) -> Result<crate::Relation, RelationalError>,
    ) -> Result<Object, RelationalError> {
        Ok(encode_relation(&f(&decode_relation(o)?)?))
    }

    fn rel(n: i64, classes: i64) -> Object {
        encode_relation(&int_relation(
            ["k", "v"],
            (0..n).map(|i| [i, i % classes]).collect::<Vec<_>>(),
        ))
    }

    #[test]
    fn select_matches_interned_path() {
        let o = rel(200, 7);
        let set = o.as_set().unwrap();
        let fast = select_eq(set, Attr::new("v"), &Atom::Int(3)).unwrap();
        let slow =
            via_algebra(&o, |r| algebra::select_eq(r, Attr::new("v"), &Atom::Int(3))).unwrap();
        assert_eq!(fast.node_id(), slow.node_id());
        // Unknown attribute errors like the schema lookup does.
        assert!(matches!(
            select_eq(set, Attr::new("zz"), &Atom::Int(0)),
            Err(RelationalError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn project_matches_interned_path_any_attr_order() {
        let o = rel(150, 5);
        let set = o.as_set().unwrap();
        for attrs in [
            vec![Attr::new("v")],
            vec![Attr::new("k"), Attr::new("v")],
            vec![Attr::new("v"), Attr::new("k")],
        ] {
            let fast = project(set, &attrs).unwrap();
            let slow = via_algebra(&o, |r| algebra::project(r, &attrs)).unwrap();
            assert_eq!(fast.node_id(), slow.node_id());
        }
        assert!(project(set, &[Attr::new("k"), Attr::new("k")]).is_err());
        assert!(project(set, &[Attr::new("nope")]).is_err());
    }

    #[test]
    fn join_matches_interned_path() {
        // r1(a, b) ⋈ r2(b, c) on the shared b.
        let r1 = encode_relation(&int_relation(
            ["a", "b"],
            (0..80).map(|i| [i, i % 11]).collect::<Vec<_>>(),
        ));
        let r2 = encode_relation(&int_relation(
            ["b", "c"],
            (0..60).map(|i| [i % 11, i * 10]).collect::<Vec<_>>(),
        ));
        let fast = natural_join(r1.as_set().unwrap(), r2.as_set().unwrap()).unwrap();
        let slow = encode_relation(
            &algebra::natural_join(
                &decode_relation(&r1).unwrap(),
                &decode_relation(&r2).unwrap(),
            )
            .unwrap(),
        );
        assert_eq!(fast.node_id(), slow.node_id());
    }

    #[test]
    fn disjoint_join_is_a_product() {
        let r1 = encode_relation(&int_relation(
            ["a"],
            (0..12).map(|i| [i]).collect::<Vec<_>>(),
        ));
        let r2 = encode_relation(&int_relation(
            ["z"],
            (0..9).map(|i| [i]).collect::<Vec<_>>(),
        ));
        let fast = natural_join(r1.as_set().unwrap(), r2.as_set().unwrap()).unwrap();
        let slow = encode_relation(
            &algebra::natural_join(
                &decode_relation(&r1).unwrap(),
                &decode_relation(&r2).unwrap(),
            )
            .unwrap(),
        );
        assert_eq!(fast.node_id(), slow.node_id());
        assert_eq!(fast.as_set().unwrap().len(), 12 * 9);
    }

    #[test]
    fn union_matches_interned_path() {
        let l = rel(100, 9);
        let r = encode_relation(&int_relation(
            ["k", "v"],
            (50..150).map(|i| [i, i % 9]).collect::<Vec<_>>(),
        ));
        let fast = union(l.as_set().unwrap(), r.as_set().unwrap()).unwrap();
        let slow = via_algebra(&l, |lr| algebra::union(lr, &decode_relation(&r).unwrap())).unwrap();
        assert_eq!(fast.node_id(), slow.node_id());
        // Mismatched schemas fail like the algebra path.
        let bad = encode_relation(&int_relation(
            ["x"],
            (0..40).map(|i| [i]).collect::<Vec<_>>(),
        ));
        assert!(matches!(
            union(l.as_set().unwrap(), bad.as_set().unwrap()),
            Err(RelationalError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn non_flat_sets_are_rejected() {
        let nested = co_object::obj!({[a: 1, b: {2}], [a: 2, b: {3}]});
        let set = nested.as_set().unwrap();
        assert!(matches!(
            select_eq(set, Attr::new("a"), &Atom::Int(1)),
            Err(RelationalError::NotFlat(_))
        ));
        let empty = Object::empty_set();
        assert!(matches!(
            project(empty.as_set().unwrap(), &[Attr::new("a")]),
            Err(RelationalError::NotFlat(_))
        ));
    }
}

//! Flat (1NF) relations: schemas, rows, and the relation container.
//!
//! This is the baseline data model the paper generalizes away from (§1):
//! every relation has a fixed flat schema and rows of atoms — no nesting,
//! no nulls. The complex-object encodings live in [`crate::encode`].

use crate::RelationalError;
use co_object::{Atom, Attr};
use std::collections::BTreeSet;
use std::fmt;

/// An ordered flat schema: a list of distinct attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelSchema {
    attrs: Vec<Attr>,
}

impl RelSchema {
    /// Builds a schema from attribute names; duplicates are an error.
    pub fn new<I, A>(attrs: I) -> Result<RelSchema, RelationalError>
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        let attrs: Vec<Attr> = attrs.into_iter().map(Into::into).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(RelationalError::SchemaMismatch {
                    operation: "schema construction (duplicate attribute)",
                    left: format!("{a}"),
                    right: format!("{a}"),
                });
            }
        }
        Ok(RelSchema { attrs })
    }

    /// The attributes, in schema order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of `a` in the schema.
    pub fn position(&self, a: Attr) -> Result<usize, RelationalError> {
        self.attrs
            .iter()
            .position(|x| *x == a)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                attr: a,
                schema: self.to_string(),
            })
    }

    /// True when the schemas contain the same attribute set (order
    /// irrelevant) — the compatibility condition for union/intersection/
    /// difference.
    pub fn same_attrs(&self, other: &RelSchema) -> bool {
        self.arity() == other.arity() && self.attrs.iter().all(|a| other.attrs.contains(a))
    }

    /// Attributes common to both schemas, in `self`'s order.
    pub fn common(&self, other: &RelSchema) -> Vec<Attr> {
        self.attrs
            .iter()
            .copied()
            .filter(|a| other.attrs.contains(a))
            .collect()
    }
}

impl fmt::Display for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A row: atoms aligned with the schema's attribute order.
pub type Row = Vec<Atom>;

/// A flat relation: a schema plus a set of rows.
///
/// Rows live in a `BTreeSet` for set semantics with deterministic
/// iteration order (atoms are totally ordered).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    schema: RelSchema,
    rows: BTreeSet<Row>,
}

impl Relation {
    /// An empty relation over the given schema.
    pub fn empty(schema: RelSchema) -> Relation {
        Relation {
            schema,
            rows: BTreeSet::new(),
        }
    }

    /// Builds a relation from rows; every row must match the schema arity.
    pub fn new<I>(schema: RelSchema, rows: I) -> Result<Relation, RelationalError>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut r = Relation::empty(schema);
        for row in rows {
            r.insert(row)?;
        }
        Ok(r)
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The rows, in deterministic order.
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row (set semantics).
    pub fn insert(&mut self, row: Row) -> Result<(), RelationalError> {
        if row.len() != self.schema.arity() {
            return Err(RelationalError::SchemaMismatch {
                operation: "row insertion (arity)",
                left: self.schema.to_string(),
                right: format!("row of arity {}", row.len()),
            });
        }
        self.rows.insert(row);
        Ok(())
    }

    /// Membership test.
    pub fn contains(&self, row: &Row) -> bool {
        self.rows.contains(row)
    }

    /// The value of `attr` in `row` (which must belong to this relation's
    /// schema).
    pub fn value<'r>(&self, row: &'r Row, attr: Attr) -> Result<&'r Atom, RelationalError> {
        Ok(&row[self.schema.position(attr)?])
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            write!(f, "  (")?;
            for (i, a) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

/// Convenience constructor: a relation over integer columns.
pub fn int_relation<const N: usize>(
    attrs: [&str; N],
    rows: impl IntoIterator<Item = [i64; N]>,
) -> Relation {
    let schema = RelSchema::new(attrs).expect("distinct attribute names");
    let mut r = Relation::empty(schema);
    for row in rows {
        r.insert(row.iter().map(|v| Atom::Int(*v)).collect())
            .expect("arity matches by construction");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_construction_and_lookup() {
        let s = RelSchema::new(["a", "b", "c"]).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position(Attr::new("b")).unwrap(), 1);
        assert!(s.position(Attr::new("z")).is_err());
        assert!(RelSchema::new(["a", "a"]).is_err());
        assert_eq!(s.to_string(), "(a, b, c)");
    }

    #[test]
    fn schema_compatibility() {
        let s1 = RelSchema::new(["a", "b"]).unwrap();
        let s2 = RelSchema::new(["b", "a"]).unwrap();
        let s3 = RelSchema::new(["a", "c"]).unwrap();
        assert!(s1.same_attrs(&s2));
        assert!(!s1.same_attrs(&s3));
        assert_eq!(s1.common(&s3), vec![Attr::new("a")]);
    }

    #[test]
    fn rows_are_a_set() {
        let r = int_relation(["a", "b"], [[1, 2], [1, 2], [3, 4]]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&vec![Atom::Int(1), Atom::Int(2)]));
        assert!(!r.is_empty());
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut r = Relation::empty(RelSchema::new(["a"]).unwrap());
        assert!(r.insert(vec![Atom::Int(1), Atom::Int(2)]).is_err());
        assert!(r.insert(vec![Atom::Int(1)]).is_ok());
    }

    #[test]
    fn value_lookup() {
        let r = int_relation(["a", "b"], [[7, 8]]);
        let row = r.rows().next().unwrap().clone();
        assert_eq!(r.value(&row, Attr::new("b")).unwrap(), &Atom::Int(8));
        assert!(r.value(&row, Attr::new("z")).is_err());
    }

    #[test]
    fn display_renders_rows() {
        let r = int_relation(["a"], [[1], [2]]);
        let text = r.to_string();
        assert!(text.contains("(a)"));
        assert!(text.contains("(1)") && text.contains("(2)"));
    }
}

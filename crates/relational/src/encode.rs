//! Encoding flat relations as complex objects and back.
//!
//! The paper observes that "a relational database is an object":
//!
//! ```text
//! [R1: {[name: peter, age: 25], …}, R2: {…}]
//! ```
//!
//! `encode_*` produce exactly that shape; `decode_*` invert it, rejecting
//! objects outside the flat fragment (nested values, missing attributes —
//! i.e. nulls — or non-tuple elements). Decoding is the bridge used by the
//! differential tests: run a query through the calculus, decode the result,
//! and compare with the flat algebra's answer.

use crate::{Database, RelSchema, Relation, RelationalError};
use co_object::{Attr, Object};

/// Encodes one relation as a set object of flat tuples.
///
/// Construction goes through the normalizing constructors and therefore the
/// hash-consed store: encoding the same relation twice (or two relations
/// sharing rows) yields the *same* interned nodes — equality against
/// calculus results is a pointer check, and repeated encodings allocate
/// nothing new.
pub fn encode_relation(r: &Relation) -> Object {
    Object::set(r.rows().map(|row| {
        Object::tuple(
            r.schema()
                .attrs()
                .iter()
                .zip(row.iter())
                .map(|(a, atom)| (*a, Object::Atom(atom.clone()))),
        )
    }))
}

/// Encodes a database as a tuple of set objects: `[r1: {…}, r2: {…}]`.
pub fn encode_database(db: &Database) -> Object {
    Object::tuple(
        db.iter()
            .map(|(name, rel)| (Attr::new(name), encode_relation(rel))),
    )
}

/// Decodes a set object of flat tuples into a relation.
///
/// Every element must be a tuple over the same attribute set with atomic
/// values; the schema is taken from the union of attributes, and a missing
/// attribute (a null) is a [`RelationalError::NotFlat`].
pub fn decode_relation(o: &Object) -> Result<Relation, RelationalError> {
    let set = o
        .as_set()
        .ok_or_else(|| RelationalError::NotFlat(format!("expected a set, got {o}")))?;
    // Collect the schema as the union of attributes over all elements.
    let mut attrs: Vec<Attr> = Vec::new();
    for e in set.iter() {
        let t = e
            .as_tuple()
            .ok_or_else(|| RelationalError::NotFlat(format!("non-tuple element {e}")))?;
        for (a, v) in t.entries() {
            if v.as_atom().is_none() {
                return Err(RelationalError::NotFlat(format!(
                    "nested value {v} at attribute {a}"
                )));
            }
            if !attrs.contains(a) {
                attrs.push(*a);
            }
        }
    }
    // Keep a deterministic column order.
    attrs.sort_by_key(|a| a.name());
    let schema = RelSchema::new(attrs.iter().copied())?;
    let mut rel = Relation::empty(schema);
    for e in set.iter() {
        let t = e.as_tuple().expect("checked above");
        let mut row = Vec::with_capacity(attrs.len());
        for a in &attrs {
            match t.get(*a) {
                Object::Atom(atom) => row.push(atom.clone()),
                Object::Bottom => {
                    return Err(RelationalError::NotFlat(format!(
                        "element {e} is missing attribute {a} (nulls are outside the flat model)"
                    )));
                }
                other => {
                    return Err(RelationalError::NotFlat(format!(
                        "nested value {other} at attribute {a}"
                    )));
                }
            }
        }
        rel.insert(row).expect("schema arity matches");
    }
    Ok(rel)
}

/// Decodes a tuple-of-sets object into a database.
pub fn decode_database(o: &Object) -> Result<Database, RelationalError> {
    let t = o
        .as_tuple()
        .ok_or_else(|| RelationalError::NotFlat(format!("expected a tuple, got {o}")))?;
    let mut db = Database::new();
    for (a, v) in t.entries() {
        db.insert(a.name().to_string(), decode_relation(v)?);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::int_relation;
    use co_object::obj;

    #[test]
    fn relation_round_trips() {
        let r = int_relation(["a", "b"], [[1, 10], [2, 20]]);
        let o = encode_relation(&r);
        assert_eq!(o, obj!({[a: 1, b: 10], [a: 2, b: 20]}));
        let back = decode_relation(&o).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn database_round_trips() {
        let mut db = Database::new();
        db.insert("r1", int_relation(["a"], [[1], [2]]));
        db.insert("r2", int_relation(["b", "c"], [[3, 4]]));
        let o = encode_database(&db);
        assert_eq!(o, obj!([r1: {[a: 1], [a: 2]}, r2: {[b: 3, c: 4]}]));
        assert_eq!(decode_database(&o).unwrap(), db);
    }

    #[test]
    fn repeated_encodings_reuse_interned_nodes() {
        let r = int_relation(["a", "b"], [[1, 10], [2, 20], [3, 30]]);
        let o1 = encode_relation(&r);
        let o2 = encode_relation(&r);
        // Same canonical value ⇒ same interned node, not merely equal trees.
        assert_eq!(o1.node_id(), o2.node_id());
        assert!(o1.node_id().is_some());
    }

    #[test]
    fn empty_relation_encodes_to_empty_set() {
        let r = Relation::empty(RelSchema::new(["a"]).unwrap());
        assert_eq!(encode_relation(&r), Object::empty_set());
        // Decoding an empty set gives an empty, zero-attribute relation.
        let back = decode_relation(&Object::empty_set()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn nulls_are_rejected() {
        // A relation with a missing attribute (paper: "relation with null
        // values") is representable as a complex object but not flat.
        let o = obj!({[name: peter], [name: john, age: 7]});
        let e = decode_relation(&o).unwrap_err();
        assert!(matches!(e, RelationalError::NotFlat(_)));
    }

    #[test]
    fn nested_values_are_rejected() {
        let o = obj!({[name: peter, children: {max}]});
        assert!(decode_relation(&o).is_err());
        let o2 = obj!({
            {
                1
            }
        });
        assert!(decode_relation(&o2).is_err());
        assert!(decode_relation(&obj!(5)).is_err());
        assert!(decode_database(&obj!({ 1 })).is_err());
    }
}

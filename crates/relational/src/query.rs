//! A small logical query language over flat databases.
//!
//! [`Query`] covers the operations the paper's §4 walkthrough exercises
//! (selection, projection, renaming, join, intersection) plus union,
//! product, and difference for baseline completeness. Queries evaluate
//! directly against a [`Database`] ([`Query::eval`]) and — apart from
//! difference, which is non-monotone — translate into calculus rule
//! programs ([`crate::translate`]), which is how the differential tests
//! validate the calculus implementation.

use crate::{algebra, Database, RelSchema, Relation, RelationalError};
use co_object::{Atom, Attr};

/// A logical query over named flat relations.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// A base relation by name.
    Rel(String),
    /// σ_{attr = value}.
    SelectEq {
        /// Input query.
        input: Box<Query>,
        /// Attribute to test.
        attr: Attr,
        /// Value it must equal.
        value: Atom,
    },
    /// π_{attrs}.
    Project {
        /// Input query.
        input: Box<Query>,
        /// Attributes to keep, in output order.
        attrs: Vec<Attr>,
    },
    /// ρ — rename attributes.
    Rename {
        /// Input query.
        input: Box<Query>,
        /// (old, new) attribute pairs.
        pairs: Vec<(Attr, Attr)>,
    },
    /// Equi-join on attribute pairs.
    Join {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
        /// (left attr, right attr) join conditions.
        on: Vec<(Attr, Attr)>,
    },
    /// ∩ of schema-compatible queries.
    Intersect {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// ∪ of schema-compatible queries.
    Union {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// × of schema-disjoint queries.
    Product {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
    /// − of schema-compatible queries (not calculus-translatable).
    Difference {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
    },
}

impl Query {
    /// A base relation reference.
    pub fn rel(name: impl Into<String>) -> Query {
        Query::Rel(name.into())
    }

    /// Chains σ_{attr = value}.
    pub fn select_eq(self, attr: impl Into<Attr>, value: impl Into<Atom>) -> Query {
        Query::SelectEq {
            input: Box::new(self),
            attr: attr.into(),
            value: value.into(),
        }
    }

    /// Chains π_{attrs}.
    pub fn project<I, A>(self, attrs: I) -> Query
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        Query::Project {
            input: Box::new(self),
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// Chains ρ.
    pub fn rename<I, A, B>(self, pairs: I) -> Query
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<Attr>,
        B: Into<Attr>,
    {
        Query::Rename {
            input: Box::new(self),
            pairs: pairs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        }
    }

    /// Joins with `other` on the given pairs.
    pub fn join<I, A, B>(self, other: Query, on: I) -> Query
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<Attr>,
        B: Into<Attr>,
    {
        Query::Join {
            left: Box::new(self),
            right: Box::new(other),
            on: on.into_iter().map(|(a, b)| (a.into(), b.into())).collect(),
        }
    }

    /// Intersects with `other`.
    pub fn intersect(self, other: Query) -> Query {
        Query::Intersect {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Unions with `other`.
    pub fn union(self, other: Query) -> Query {
        Query::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Cartesian product with `other`.
    pub fn product(self, other: Query) -> Query {
        Query::Product {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Difference with `other`.
    pub fn difference(self, other: Query) -> Query {
        Query::Difference {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Evaluates against the flat algebra.
    pub fn eval(&self, db: &Database) -> Result<Relation, RelationalError> {
        match self {
            Query::Rel(name) => Ok(db.get(name)?.clone()),
            Query::SelectEq { input, attr, value } => {
                algebra::select_eq(&input.eval(db)?, *attr, value)
            }
            Query::Project { input, attrs } => algebra::project(&input.eval(db)?, attrs),
            Query::Rename { input, pairs } => algebra::rename(&input.eval(db)?, pairs),
            Query::Join { left, right, on } => {
                algebra::equi_join(&left.eval(db)?, &right.eval(db)?, on)
            }
            Query::Intersect { left, right } => {
                algebra::intersect(&left.eval(db)?, &right.eval(db)?)
            }
            Query::Union { left, right } => algebra::union(&left.eval(db)?, &right.eval(db)?),
            Query::Product { left, right } => algebra::product(&left.eval(db)?, &right.eval(db)?),
            Query::Difference { left, right } => {
                algebra::difference(&left.eval(db)?, &right.eval(db)?)
            }
        }
    }

    /// The output schema against `db` (evaluating nothing).
    pub fn schema(&self, db: &Database) -> Result<RelSchema, RelationalError> {
        match self {
            Query::Rel(name) => Ok(db.get(name)?.schema().clone()),
            Query::SelectEq { input, attr, .. } => {
                let s = input.schema(db)?;
                s.position(*attr)?;
                Ok(s)
            }
            Query::Project { input, attrs } => {
                let s = input.schema(db)?;
                for a in attrs {
                    s.position(*a)?;
                }
                RelSchema::new(attrs.iter().copied())
            }
            Query::Rename { input, pairs } => {
                let s = input.schema(db)?;
                for (old, _) in pairs {
                    s.position(*old)?;
                }
                RelSchema::new(s.attrs().iter().map(|a| {
                    pairs
                        .iter()
                        .find(|(old, _)| old == a)
                        .map(|(_, new)| *new)
                        .unwrap_or(*a)
                }))
            }
            Query::Join { left, right, on } => {
                let ls = left.schema(db)?;
                let rs = right.schema(db)?;
                let r_targets: Result<Vec<usize>, _> =
                    on.iter().map(|(_, b)| rs.position(*b)).collect();
                let r_targets = r_targets?;
                for (a, _) in on {
                    ls.position(*a)?;
                }
                RelSchema::new(
                    ls.attrs().iter().copied().chain(
                        rs.attrs()
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| !r_targets.contains(i))
                            .map(|(_, a)| *a),
                    ),
                )
            }
            Query::Intersect { left, right }
            | Query::Union { left, right }
            | Query::Difference { left, right } => {
                let ls = left.schema(db)?;
                let rs = right.schema(db)?;
                if !ls.same_attrs(&rs) {
                    return Err(RelationalError::SchemaMismatch {
                        operation: "set operation",
                        left: ls.to_string(),
                        right: rs.to_string(),
                    });
                }
                Ok(ls)
            }
            Query::Product { left, right } => {
                let ls = left.schema(db)?;
                let rs = right.schema(db)?;
                RelSchema::new(ls.attrs().iter().chain(rs.attrs()).copied())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::int_relation;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert("r1", int_relation(["a", "b"], [[1, 10], [2, 20], [3, 10]]));
        db.insert("r2", int_relation(["c", "d"], [[10, 100], [20, 200]]));
        db
    }

    #[test]
    fn select_project_chain() {
        let q = Query::rel("r1").select_eq("b", 10).project(["a"]);
        let r = q.eval(&db()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(q.schema(&db()).unwrap().attrs(), &[Attr::new("a")]);
    }

    #[test]
    fn join_query() {
        let q = Query::rel("r1").join(Query::rel("r2"), [("b", "c")]);
        let r = q.eval(&db()).unwrap();
        assert_eq!(r.len(), 3); // b=10 joins twice (rows 1,3), b=20 once.
        assert_eq!(
            q.schema(&db()).unwrap().attrs(),
            &[Attr::new("a"), Attr::new("b"), Attr::new("d")]
        );
    }

    #[test]
    fn set_operations() {
        let q = Query::rel("r1")
            .project(["a"])
            .union(Query::rel("r2").project(["c"]).rename([("c", "a")]));
        let r = q.eval(&db()).unwrap();
        assert_eq!(r.len(), 5); // {1,2,3} ∪ {10,20}
        let qi = Query::rel("r1")
            .project(["b"])
            .rename([("b", "c")])
            .intersect(Query::rel("r2").project(["c"]));
        assert_eq!(qi.eval(&db()).unwrap().len(), 2);
        let qd = Query::rel("r1")
            .project(["b"])
            .rename([("b", "c")])
            .difference(Query::rel("r2").project(["c"]));
        assert_eq!(qd.eval(&db()).unwrap().len(), 0);
    }

    #[test]
    fn schema_errors_surface() {
        assert!(Query::rel("zzz").eval(&db()).is_err());
        assert!(Query::rel("r1").select_eq("nope", 1).eval(&db()).is_err());
        assert!(Query::rel("r1")
            .union(Query::rel("r2"))
            .eval(&db())
            .is_err());
        assert!(Query::rel("r1")
            .union(Query::rel("r2"))
            .schema(&db())
            .is_err());
    }

    #[test]
    fn product_query() {
        let q = Query::rel("r1")
            .project(["a"])
            .product(Query::rel("r2").project(["c"]));
        assert_eq!(q.eval(&db()).unwrap().len(), 6);
    }
}

//! Errors for the relational baseline.

use co_object::Attr;
use std::fmt;

/// Errors produced by relational operations and conversions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelationalError {
    /// An operation referenced an attribute missing from the schema.
    UnknownAttribute {
        /// The missing attribute.
        attr: Attr,
        /// The schema it was looked up in, rendered.
        schema: String,
    },
    /// A binary operation was applied to incompatible schemas.
    SchemaMismatch {
        /// What the operation was.
        operation: &'static str,
        /// Left schema, rendered.
        left: String,
        /// Right schema, rendered.
        right: String,
    },
    /// A named relation is missing from the database.
    UnknownRelation(String),
    /// Conversion from a complex object found a shape the flat model cannot
    /// represent (nested value, missing attribute, non-tuple element…).
    NotFlat(String),
    /// The query is outside the translatable (monotone) fragment.
    NotTranslatable(&'static str),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownAttribute { attr, schema } => {
                write!(f, "attribute `{attr}` not in schema {schema}")
            }
            RelationalError::SchemaMismatch {
                operation,
                left,
                right,
            } => write!(f, "{operation}: incompatible schemas {left} and {right}"),
            RelationalError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
            RelationalError::NotFlat(what) => {
                write!(f, "object is not a flat relation: {what}")
            }
            RelationalError::NotTranslatable(what) => {
                write!(
                    f,
                    "query not expressible in the (monotone) calculus: {what}"
                )
            }
        }
    }
}

impl std::error::Error for RelationalError {}

//! A named collection of flat relations.

use crate::{Relation, RelationalError};
use std::collections::BTreeMap;
use std::fmt;

/// A flat relational database: named relations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Adds (or replaces) a named relation.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Result<&Relation, RelationalError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Iterates `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in self.iter() {
            writeln!(f, "{name}: {rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::int_relation;

    #[test]
    fn insert_get_iterate() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.insert("r1", int_relation(["a"], [[1]]));
        db.insert("r2", int_relation(["b"], [[2]]));
        assert_eq!(db.len(), 2);
        assert_eq!(db.get("r1").unwrap().len(), 1);
        assert!(db.get("zzz").is_err());
        let names: Vec<&str> = db.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["r1", "r2"]);
        assert!(db.to_string().contains("r1"));
    }
}

//! Differential proptests for the columnar fast path: every vectorized
//! operator must be *bit-identical* to the supported interned path
//! (`decode_relation` → `algebra` → `encode_relation`) — not just equal
//! as values, but the very same `NodeId`, because callers downstream
//! (memo tables, snapshots, the engine's set index) key on identity.
//!
//! The arena threshold is dropped to 2 rows so the generated relations —
//! deliberately small, to let proptest shrink — actually take the
//! columnar path. Dedicated tests interleave full store collections
//! (the in-process analogue of the `CO_GC_EVERY_ROUND=1` CI lane, which
//! runs this suite too) and race four threads over shared relations:
//! whatever order arenas are built and caches are purged in, the
//! canonical boundary must hand back the same node.

use co_object::columnar::set_columnar_min_rows;
use co_object::{store, Atom, Attr, Object};
use co_relational::{algebra, columnar, decode_relation, encode_relation, Relation};
use proptest::prelude::*;

const ATTR_POOL: [&str; 5] = ["a", "b", "c", "d", "k"];

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0i64..12).prop_map(Atom::from),
        any::<bool>().prop_map(Atom::from),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Atom::from),
    ]
}

fn schema() -> impl Strategy<Value = Vec<Attr>> {
    proptest::sample::subsequence(ATTR_POOL.to_vec(), 1..=4)
        .prop_map(|names| names.into_iter().map(Attr::new).collect())
}

/// A non-empty flat relation over `schema` (an empty set has no schema
/// to infer, so both paths reject it before any comparison is possible).
fn relation(schema: Vec<Attr>) -> impl Strategy<Value = Object> {
    let arity = schema.len();
    proptest::collection::vec(proptest::collection::vec(atom(), arity..arity + 1), 1..24).prop_map(
        move |rows| {
            Object::set(rows.into_iter().map(|row| {
                Object::tuple(
                    schema
                        .iter()
                        .copied()
                        .zip(row.into_iter().map(Object::Atom)),
                )
            }))
        },
    )
}

/// A schema paired with a relation over it.
fn schema_and_relation() -> impl Strategy<Value = (Vec<Attr>, Object)> {
    schema().prop_flat_map(|s| (Just(s.clone()), relation(s)))
}

/// The interned baseline for unary operators.
fn slow(rel: &Object, op: impl Fn(&Relation) -> Relation) -> Object {
    encode_relation(&op(&decode_relation(rel).unwrap()))
}

/// The interned baseline for binary operators.
fn slow2(l: &Object, r: &Object, op: impl Fn(&Relation, &Relation) -> Relation) -> Object {
    encode_relation(&op(
        &decode_relation(l).unwrap(),
        &decode_relation(r).unwrap(),
    ))
}

proptest! {
    #[test]
    fn select_eq_matches_the_interned_path(
        (sch, rel) in schema_and_relation(),
        attr_ix in 0usize..4,
        value in atom(),
    ) {
        set_columnar_min_rows(2);
        let set = rel.as_set().unwrap();
        let attr = sch[attr_ix % sch.len()];
        let fast = columnar::select_eq(set, attr, &value).unwrap();
        let reference = slow(&rel, |r| algebra::select_eq(r, attr, &value).unwrap());
        prop_assert_eq!(fast.node_id(), reference.node_id());
    }

    #[test]
    fn project_matches_the_interned_path(
        (sch, rel) in schema_and_relation(),
        attr_ix in 0usize..4,
    ) {
        set_columnar_min_rows(2);
        let set = rel.as_set().unwrap();
        // A single attribute, and the full schema in reversed (i.e.
        // non-canonical) order: projection is order-insensitive.
        let one = [sch[attr_ix % sch.len()]];
        let reversed: Vec<Attr> = sch.iter().rev().copied().collect();
        for attrs in [&one[..], &reversed[..]] {
            let fast = columnar::project(set, attrs).unwrap();
            let reference = slow(&rel, |r| algebra::project(r, attrs).unwrap());
            prop_assert_eq!(fast.node_id(), reference.node_id());
        }
    }

    #[test]
    fn natural_join_matches_the_interned_path(
        (_, left) in schema_and_relation(),
        (_, right) in schema_and_relation(),
    ) {
        set_columnar_min_rows(2);
        // Schemas overlap or not as the generator pleases: both the hash
        // join and the cartesian fallback must agree with the algebra.
        let fast =
            columnar::natural_join(left.as_set().unwrap(), right.as_set().unwrap()).unwrap();
        let reference = slow2(&left, &right, |l, r| algebra::natural_join(l, r).unwrap());
        prop_assert_eq!(fast.node_id(), reference.node_id());
    }

    #[test]
    fn union_matches_the_interned_path(
        (sch, left) in schema_and_relation(),
        extra_rows in proptest::collection::vec(proptest::collection::vec(atom(), 4..5), 1..24),
    ) {
        set_columnar_min_rows(2);
        // Same schema on both sides (union demands it); overlapping rows
        // are likely, so dedup across the seam is exercised.
        let right = Object::set(extra_rows.into_iter().map(|row| {
            Object::tuple(sch.iter().copied().zip(row.into_iter().map(Object::Atom)))
        }));
        let fast = columnar::union(left.as_set().unwrap(), right.as_set().unwrap()).unwrap();
        let reference = slow2(&left, &right, |l, r| algebra::union(l, r).unwrap());
        prop_assert_eq!(fast.node_id(), reference.node_id());
    }

    /// The arena cache is purged by every full collection; rebuilding it
    /// afterwards must land on the same canonical results as long as the
    /// inputs are alive.
    #[test]
    fn results_are_stable_across_store_collections(
        (sch, rel) in schema_and_relation(),
        value in atom(),
    ) {
        set_columnar_min_rows(2);
        let set = rel.as_set().unwrap();
        let attr = sch[0];
        let before = columnar::select_eq(set, attr, &value).unwrap();
        store::collect();
        let after = columnar::select_eq(set, attr, &value).unwrap();
        prop_assert_eq!(before.node_id(), after.node_id());
        store::collect();
        let reference = slow(&rel, |r| algebra::select_eq(r, attr, &value).unwrap());
        prop_assert_eq!(after.node_id(), reference.node_id());
    }
}

/// Four threads race the same shared relations through every operator;
/// arenas are built and memoized concurrently, and every thread must
/// re-intern to the same nodes the interned path produces.
#[test]
fn four_threads_agree_with_the_interned_path() {
    set_columnar_min_rows(2);
    let (k, v, w) = (Attr::new("k"), Attr::new("v"), Attr::new("w"));
    let left = Object::set(
        (0..300i64).map(|i| Object::tuple([(k, Object::int(i % 50)), (v, Object::int(i % 7))])),
    );
    let right = Object::set(
        (0..40i64).map(|i| Object::tuple([(k, Object::int(i)), (w, Object::int(i % 3))])),
    );
    let three = Atom::from(3i64);

    let expected = [
        slow(&left, |r| algebra::select_eq(r, v, &three).unwrap()).node_id(),
        slow(&left, |r| algebra::project(r, &[v]).unwrap()).node_id(),
        slow2(&left, &right, |l, r| algebra::natural_join(l, r).unwrap()).node_id(),
        slow2(&left, &right, |l, r| {
            algebra::union(
                &algebra::project(l, &[k]).unwrap(),
                &algebra::project(r, &[k]).unwrap(),
            )
            .unwrap()
        })
        .node_id(),
    ];

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let (left, right, three) = (&left, &right, &three);
                scope.spawn(move || {
                    let (ls, rs) = (left.as_set().unwrap(), right.as_set().unwrap());
                    [
                        columnar::select_eq(ls, v, three).unwrap().node_id(),
                        columnar::project(ls, &[v]).unwrap().node_id(),
                        columnar::natural_join(ls, rs).unwrap().node_id(),
                        columnar::union(
                            columnar::project(ls, &[k]).unwrap().as_set().unwrap(),
                            columnar::project(rs, &[k]).unwrap().as_set().unwrap(),
                        )
                        .unwrap()
                        .node_id(),
                    ]
                })
            })
            .collect();
        for worker in workers {
            assert_eq!(
                worker.join().expect("worker panicked"),
                expected,
                "every thread must land on the interned path's nodes"
            );
        }
    });
}

//! Well-formed formulae (paper Definition 4.1).
//!
//! A wff has exactly the syntax of an object, except that variables may
//! stand anywhere an object could (Prolog convention: `X`, `Y`, … are
//! variables; `john`, `25` are constants). We extend Definition 4.1 with an
//! explicit `⊥` formula so that *facts* — rules written `head.` in Example
//! 4.5 — are representable as rules whose body is ⊥ (see DESIGN.md §3.5):
//! `σ⊥ = ⊥ ≤ O` holds for every database, so a fact fires unconditionally.

use crate::{CalculusError, Substitution, Var};
use co_object::{Atom, Attr, Object};
use std::fmt;

/// A well-formed formula (Definition 4.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The ⊥ constant (extension; bodies of facts).
    Bottom,
    /// A variable.
    Var(Var),
    /// An atomic constant.
    Atom(Atom),
    /// A tuple formula `[a1: w1, …, an: wn]` with distinct attributes,
    /// kept sorted by attribute id.
    Tuple(Vec<(Attr, Formula)>),
    /// A set formula `{w1, …, wn}`.
    Set(Vec<Formula>),
}

impl Formula {
    /// Builds a variable formula.
    pub fn var(name: impl Into<Var>) -> Formula {
        Formula::Var(name.into())
    }

    /// Builds an atomic constant formula.
    pub fn atom(a: impl Into<Atom>) -> Formula {
        Formula::Atom(a.into())
    }

    /// Builds a tuple formula, sorting entries by attribute and rejecting
    /// duplicate attribute names (Definition 4.1(iii) requires them
    /// distinct).
    pub fn tuple<I, A>(entries: I) -> Result<Formula, CalculusError>
    where
        I: IntoIterator<Item = (A, Formula)>,
        A: Into<Attr>,
    {
        let mut v: Vec<(Attr, Formula)> = entries.into_iter().map(|(a, f)| (a.into(), f)).collect();
        v.sort_by_key(|(a, _)| *a);
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(CalculusError::DuplicateAttribute(w[0].0));
            }
        }
        Ok(Formula::Tuple(v))
    }

    /// Builds a set formula.
    pub fn set<I>(members: I) -> Formula
    where
        I: IntoIterator<Item = Formula>,
    {
        Formula::Set(members.into_iter().collect())
    }

    /// Converts a ground object into the formula that denotes it.
    /// (Every object is a wff; Definition 4.1(ii)–(iv).)
    pub fn from_object(o: &Object) -> Formula {
        match o {
            Object::Bottom => Formula::Bottom,
            // ⊤ has no formula syntax in the paper; represent it as a
            // constant via the atom escape hatch is impossible, so reuse
            // Bottom..Top mapping is *not* allowed — callers converting
            // databases to formulas never see ⊤ (it poisons whole objects).
            Object::Top => unreachable!("⊤ cannot appear inside a canonical object"),
            Object::Atom(a) => Formula::Atom(a.clone()),
            Object::Tuple(t) => Formula::Tuple(
                t.iter()
                    .map(|(a, v)| (*a, Formula::from_object(v)))
                    .collect(),
            ),
            Object::Set(s) => Formula::Set(s.iter().map(Formula::from_object).collect()),
        }
    }

    /// The set of variables occurring in the formula, in first-occurrence
    /// order.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Formula::Bottom | Formula::Atom(_) => {}
            Formula::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Formula::Tuple(entries) => {
                for (_, f) in entries {
                    f.collect_vars(out);
                }
            }
            Formula::Set(members) => {
                for f in members {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// True when the formula contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Formula::Bottom | Formula::Atom(_) => true,
            Formula::Var(_) => false,
            Formula::Tuple(entries) => entries.iter().all(|(_, f)| f.is_ground()),
            Formula::Set(members) => members.iter().all(Formula::is_ground),
        }
    }

    /// Instantiation `σE` (paper, before Definition 4.2): replaces each
    /// variable by its binding and evaluates the constructors, normalizing
    /// as objects always do. Variables absent from `σ` instantiate to ⊤ —
    /// the maximally permissive reading; matchers always produce total
    /// substitutions, so this matters only for hand-built σ.
    pub fn instantiate(&self, subst: &Substitution) -> Object {
        match self {
            Formula::Bottom => Object::Bottom,
            Formula::Atom(a) => Object::Atom(a.clone()),
            Formula::Var(v) => subst.get(*v).cloned().unwrap_or(Object::Top),
            Formula::Tuple(entries) => {
                Object::tuple(entries.iter().map(|(a, f)| (*a, f.instantiate(subst))))
            }
            Formula::Set(members) => Object::set(members.iter().map(|f| f.instantiate(subst))),
        }
    }

    /// Number of syntax nodes — used by evaluation statistics.
    pub fn size(&self) -> usize {
        match self {
            Formula::Bottom | Formula::Atom(_) | Formula::Var(_) => 1,
            Formula::Tuple(entries) => 1 + entries.iter().map(|(_, f)| f.size()).sum::<usize>(),
            Formula::Set(members) => 1 + members.iter().map(Formula::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Bottom => write!(f, "bot"),
            Formula::Var(v) => write!(f, "{v}"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Tuple(entries) => {
                // Like object display: order by attribute name so rendering
                // does not depend on process-local interning order.
                let mut by_name: Vec<&(Attr, Formula)> = entries.iter().collect();
                by_name.sort_by_key(|(a, _)| a.name());
                write!(f, "[")?;
                for (i, (a, w)) in by_name.into_iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {w}", co_object::display::attr_name(*a))?;
                }
                write!(f, "]")
            }
            Formula::Set(members) => {
                write!(f, "{{")?;
                for (i, w) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Builds a [`Formula`] with object-like literal syntax.
///
/// Identifiers starting with an upper-case letter are **variables** (the
/// paper's Prolog convention); lower-case identifiers are string constants.
///
/// ```
/// use co_calculus::{wff, Formula, Var};
///
/// let f = wff!([r1: {[a: (Var::new("X")), b: b]}]);
/// assert_eq!(f.variables(), vec![Var::new("X")]);
/// ```
///
/// Note: macro_rules cannot inspect identifier case, so variables are
/// spliced explicitly with `(Var::new("X"))` or via [`Formula::var`]; the
/// text parser in `co-parser` applies the case convention automatically.
#[macro_export]
macro_rules! wff {
    (bot) => { $crate::Formula::Bottom };
    ([ $($key:ident : $value:tt),* $(,)? ]) => {{
        let entries: ::std::vec::Vec<(::co_object::Attr, $crate::Formula)> =
            ::std::vec![ $( (::co_object::Attr::new(stringify!($key)), $crate::wff!($value)) ),* ];
        $crate::Formula::tuple(entries).expect("duplicate attribute in wff! literal")
    }};
    ({ $($elem:tt),* $(,)? }) => {{
        let members: ::std::vec::Vec<$crate::Formula> = ::std::vec![ $( $crate::wff!($elem) ),* ];
        $crate::Formula::set(members)
    }};
    (( $e:expr )) => { $crate::formula::IntoFormula::into_formula($e) };
    ($lit:literal) => { $crate::Formula::Atom(::co_object::Atom::from($lit)) };
    ($id:ident) => { $crate::Formula::Atom(::co_object::Atom::str(stringify!($id))) };
}

/// Conversion into [`Formula`] for splicing into [`wff!`](crate::wff).
pub trait IntoFormula {
    /// Converts `self` into a formula.
    fn into_formula(self) -> Formula;
}

impl IntoFormula for Formula {
    fn into_formula(self) -> Formula {
        self
    }
}

impl IntoFormula for &Formula {
    fn into_formula(self) -> Formula {
        self.clone()
    }
}

impl IntoFormula for Var {
    fn into_formula(self) -> Formula {
        Formula::Var(self)
    }
}

impl IntoFormula for &Object {
    fn into_formula(self) -> Formula {
        Formula::from_object(self)
    }
}

impl IntoFormula for Atom {
    fn into_formula(self) -> Formula {
        Formula::Atom(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {(x())}]);
        assert_eq!(f.variables(), vec![x(), y()]);
        assert!(!f.is_ground());
        assert!(wff!([a: 1, b: {2}]).is_ground());
    }

    #[test]
    fn tuple_formula_rejects_duplicate_attributes() {
        let r = Formula::tuple([("a", wff!(1)), ("a", wff!(2))]);
        assert!(matches!(r, Err(CalculusError::DuplicateAttribute(_))));
    }

    #[test]
    fn instantiation_normalizes_like_objects() {
        let f = wff!([a: (x()), b: 2]);
        // X ↦ ⊥ drops the attribute.
        let s = Substitution::single(x(), Object::Bottom);
        assert_eq!(f.instantiate(&s), obj!([b: 2]));
        // X ↦ ⊤ poisons the tuple.
        let s = Substitution::single(x(), Object::Top);
        assert_eq!(f.instantiate(&s), Object::Top);
        // Ordinary binding.
        let s = Substitution::single(x(), obj!({1, 2}));
        assert_eq!(f.instantiate(&s), obj!([a: {1, 2}, b: 2]));
    }

    #[test]
    fn instantiation_of_set_formulas_reduces() {
        let f = wff!({(x()), (y())});
        let s = Substitution::from_pairs([(x(), obj!([a: 1])), (y(), obj!([a: 1, b: 2]))]);
        assert_eq!(f.instantiate(&s), obj!({[a: 1, b: 2]}));
    }

    #[test]
    fn from_object_round_trips_through_instantiation() {
        let o = obj!([r: {[a: 1], [b: {2, 3}]}, n: 5]);
        let f = Formula::from_object(&o);
        assert!(f.is_ground());
        assert_eq!(f.instantiate(&Substitution::empty()), o);
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = wff!([r1: {[a: (x()), b: b]}]);
        assert_eq!(f.to_string(), "[r1: {[a: X, b: b]}]");
        assert_eq!(wff!(bot).to_string(), "bot");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(wff!(1).size(), 1);
        // tuple + atom 1 + set + atom 2 + var X = 5 nodes.
        assert_eq!(wff!([a: 1, b: {2, (x())}]).size(), 5);
    }
}

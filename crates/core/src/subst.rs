//! Substitutions `σ = {O1/X1, …, On/Xn}` (paper, Section 4).

use crate::Var;
use co_object::Object;
use smallvec::SmallVec;
use std::fmt;

/// A substitution: a finite map from variables to complex objects.
///
/// Stored as a by-variable-sorted inline vector (formulae rarely have more
/// than a handful of variables), which makes substitutions `Eq + Hash` —
/// the matcher deduplicates the substitutions produced by different choice
/// functions.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Substitution {
    entries: SmallVec<[(Var, Object); 4]>,
}

impl Substitution {
    /// The empty substitution.
    pub fn empty() -> Substitution {
        Substitution::default()
    }

    /// A single-binding substitution.
    pub fn single(v: Var, o: Object) -> Substitution {
        Substitution {
            entries: SmallVec::from_iter([(v, o)]),
        }
    }

    /// Builds a substitution from (variable, object) pairs. Later pairs for
    /// the same variable overwrite earlier ones.
    pub fn from_pairs<I>(pairs: I) -> Substitution
    where
        I: IntoIterator<Item = (Var, Object)>,
    {
        let mut s = Substitution::empty();
        for (v, o) in pairs {
            s.insert(v, o);
        }
        s
    }

    /// The binding of `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Object> {
        self.entries
            .binary_search_by_key(&v, |(k, _)| *k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Inserts or replaces the binding of `v`.
    pub fn insert(&mut self, v: Var, o: Object) {
        match self.entries.binary_search_by_key(&v, |(k, _)| *k) {
            Ok(i) => self.entries[i].1 = o,
            Err(i) => self.entries.insert(i, (v, o)),
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Object)> {
        self.entries.iter().map(|(v, o)| (*v, o))
    }

    /// True when some binding is ⊥ — the condition the **strict** match
    /// policy filters out (see DESIGN.md §3.3).
    pub fn has_bottom_binding(&self) -> bool {
        self.entries.iter().any(|(_, o)| o.is_bottom())
    }

    /// Restricts the substitution to the given variables.
    pub fn restrict(&self, vars: &[Var]) -> Substitution {
        Substitution {
            entries: self
                .entries
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// Pointwise comparison: `self ≤ other` when every binding of `self` is
    /// a sub-object of `other`'s binding for the same variable.
    ///
    /// Meaningful for substitutions over the same variable set (as the
    /// matcher produces); variables missing from `other` read as ⊤.
    pub fn le(&self, other: &Substitution) -> bool {
        for (v, o) in self.iter() {
            // A variable missing from `other` reads as ⊤, and everything is
            // ≤ ⊤ — no binding to materialize.
            if let Some(rhs) = other.get(v) {
                if !co_object::order::le(o, rhs) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, o)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}/{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, Object)> for Substitution {
    fn from_iter<T: IntoIterator<Item = (Var, Object)>>(iter: T) -> Self {
        Substitution::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_object::obj;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn insert_get_replace() {
        let mut s = Substitution::empty();
        assert!(s.is_empty());
        s.insert(v("X"), obj!(1));
        s.insert(v("Y"), obj!(2));
        s.insert(v("X"), obj!(3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(v("X")), Some(&obj!(3)));
        assert_eq!(s.get(v("Y")), Some(&obj!(2)));
        assert_eq!(s.get(v("Z")), None);
    }

    #[test]
    fn equality_is_order_independent() {
        let a = Substitution::from_pairs([(v("X"), obj!(1)), (v("Y"), obj!(2))]);
        let b = Substitution::from_pairs([(v("Y"), obj!(2)), (v("X"), obj!(1))]);
        assert_eq!(a, b);
    }

    #[test]
    fn bottom_detection() {
        let s = Substitution::from_pairs([(v("X"), obj!(1)), (v("Y"), Object::Bottom)]);
        assert!(s.has_bottom_binding());
        assert!(!Substitution::single(v("X"), obj!(1)).has_bottom_binding());
    }

    #[test]
    fn restriction() {
        let s = Substitution::from_pairs([(v("X"), obj!(1)), (v("Y"), obj!(2))]);
        let r = s.restrict(&[v("Y")]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(v("Y")), Some(&obj!(2)));
    }

    #[test]
    fn pointwise_le() {
        let small = Substitution::from_pairs([(v("X"), obj!({ 1 }))]);
        let big = Substitution::from_pairs([(v("X"), obj!({1, 2})), (v("Y"), obj!(3))]);
        assert!(small.le(&big));
        assert!(!big.le(&small)); // X ↦ {1,2} is not ≤ X ↦ {1}.
        assert!(small.le(&small));
    }

    #[test]
    fn display() {
        let s = Substitution::from_pairs([(v("X"), obj!(1))]);
        assert_eq!(s.to_string(), "{1/X}");
    }
}

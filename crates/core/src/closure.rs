//! Closure of an object under a rule set (paper Definitions 4.5/4.6,
//! Theorem 4.1) — the *reference* fixpoint implementation.
//!
//! This module is the executable specification: simple, obviously-correct
//! naive iteration. The production engine (`co-engine`) implements the same
//! semantics with semi-naive evaluation, indexes, and richer guards, and is
//! differentially tested against this one.
//!
//! # Iteration modes
//!
//! Theorem 4.1 iterates `On = R(On-1)` from `O1 = O`. Taken literally that
//! series is not monotone for rule sets that do not re-derive their input
//! (a lone projection rule maps the database to just its output relation,
//! and the next step maps *that* to ⊥). The closure the paper wants — "the
//! unique minimal object closed under R" that contains the database of
//! Example 4.5 — is the limit of the **inflationary** series
//! `On = On-1 ∪ R(On-1)`, i.e. the least fixpoint of the monotone,
//! inflationary map `O ↦ O ∪ R(O)` above `O` (Tarski/Kleene; the lattice
//! structure of Theorem 3.6 is what makes this well-defined). Both modes are
//! provided; `Inflationary` is the default. See DESIGN.md §3.4.

use crate::apply::apply_program;
use crate::matcher::MatchPolicy;
use crate::{CalculusError, Program};
use co_object::lattice::union;
use co_object::{measure, Object};

/// How to iterate towards the closure (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ClosureMode {
    /// `On = On-1 ∪ R(On-1)` — monotone series converging to the least
    /// fixpoint above the initial object. The default.
    #[default]
    Inflationary,
    /// `On = R(On-1)` — Theorem 4.1 verbatim. May oscillate or lose the
    /// initial object for programs that do not re-derive their input.
    PaperLiteral,
}

/// Guard limits for closure computation. Example 4.6 shows rule sets with
/// no (finite) closure; guards turn that divergence into an error carrying
/// the partial result.
#[derive(Clone, Copy, Debug)]
pub struct ClosureLimits {
    /// Maximum number of iterations before giving up.
    pub max_iterations: u64,
    /// Maximum database size (node count) before giving up.
    pub max_size: u64,
    /// Maximum database depth before giving up.
    pub max_depth: u64,
}

impl Default for ClosureLimits {
    fn default() -> Self {
        ClosureLimits {
            max_iterations: 10_000,
            max_size: 10_000_000,
            max_depth: 10_000,
        }
    }
}

/// The result of a converged closure computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Closure {
    /// The closed object (for `Inflationary`, the minimal closed object
    /// containing the input).
    pub object: Object,
    /// Number of applications of `R` performed (including the one that
    /// confirmed the fixpoint).
    pub iterations: u64,
}

/// Computes the closure of `db` under `program`.
///
/// ```
/// use co_calculus::{closure, wff, ClosureLimits, ClosureMode, MatchPolicy,
///                   Program, Rule, Var};
/// use co_object::obj;
///
/// // Example 4.5: descendants of abraham.
/// let x = Var::new("X");
/// let y = Var::new("Y");
/// let program = Program::from_rules([
///     Rule::fact(wff!([doa: {abraham}])).unwrap(),
///     Rule::new(
///         wff!([doa: {(x)}]),
///         wff!([family: {[name: (y), children: {[name: (x)]}]}, doa: {(y)}]),
///     )
///     .unwrap(),
/// ]);
/// let db = obj!([family: {
///     [name: abraham, children: {[name: isaac]}],
///     [name: isaac, children: {[name: esau], [name: jacob]}]
/// }]);
/// let c = closure(
///     &program, &db,
///     ClosureMode::Inflationary, MatchPolicy::Strict, ClosureLimits::default(),
/// ).unwrap();
/// assert_eq!(
///     c.object.dot("doa"),
///     &obj!({abraham, isaac, esau, jacob})
/// );
/// ```
pub fn closure(
    program: &Program,
    db: &Object,
    mode: ClosureMode,
    policy: MatchPolicy,
    limits: ClosureLimits,
) -> Result<Closure, CalculusError> {
    let mut current = db.clone();
    for iteration in 1..=limits.max_iterations {
        let applied = apply_program(program, &current, policy);
        let next = match mode {
            ClosureMode::Inflationary => union(&current, &applied),
            ClosureMode::PaperLiteral => applied,
        };
        if next == current {
            return Ok(Closure {
                object: current,
                iterations: iteration,
            });
        }
        if measure::size(&next) > limits.max_size {
            return Err(CalculusError::Diverged {
                iterations: iteration,
                reason: format!("database size exceeded {}", limits.max_size),
                partial: Box::new(next),
            });
        }
        if let Some(d) = measure::depth(&next).finite() {
            if d > limits.max_depth {
                return Err(CalculusError::Diverged {
                    iterations: iteration,
                    reason: format!("database depth exceeded {}", limits.max_depth),
                    partial: Box::new(next),
                });
            }
        }
        current = next;
    }
    Err(CalculusError::Diverged {
        iterations: limits.max_iterations,
        reason: format!("no fixpoint within {} iterations", limits.max_iterations),
        partial: Box::new(current),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::is_closed_under;
    use crate::{wff, Rule, Var};
    use co_object::obj;
    use co_object::order::le;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    fn genealogy_db() -> Object {
        obj!([family: {
            [name: abraham, children: {[name: isaac]}],
            [name: isaac, children: {[name: esau], [name: jacob]}],
            [name: jacob, children: {[name: joseph], [name: judah]}],
            [name: nahor, children: {[name: bethuel]}]
        }])
    }

    fn descendants_program() -> Program {
        Program::from_rules([
            Rule::fact(wff!([doa: {abraham}])).unwrap(),
            Rule::new(
                wff!([doa: {(x())}]),
                wff!([family: {[name: (y()), children: {[name: (x())]}]}, doa: {(y())}]),
            )
            .unwrap(),
        ])
    }

    #[test]
    fn example_4_5_descendants_of_abraham() {
        let c = closure(
            &descendants_program(),
            &genealogy_db(),
            ClosureMode::Inflationary,
            MatchPolicy::Strict,
            ClosureLimits::default(),
        )
        .unwrap();
        assert_eq!(
            c.object.dot("doa"),
            &obj!({abraham, isaac, esau, jacob, joseph, judah})
        );
        // nahor's line is unreachable from abraham.
        assert!(!c
            .object
            .dot("doa")
            .as_set()
            .unwrap()
            .contains(&obj!(bethuel)));
        // The result is closed and contains the input (Definition 4.6).
        assert!(is_closed_under(
            &descendants_program(),
            &c.object,
            MatchPolicy::Strict
        ));
        assert!(le(&genealogy_db(), &c.object));
    }

    #[test]
    fn closure_is_minimal_among_closed_supersets() {
        // Adding anything the program derives does not change the closure;
        // the closure is below any closed object containing the input.
        let c = closure(
            &descendants_program(),
            &genealogy_db(),
            ClosureMode::Inflationary,
            MatchPolicy::Strict,
            ClosureLimits::default(),
        )
        .unwrap();
        // A strictly larger closed object.
        let bigger = union(&c.object, &obj!([doa: {extra_person}]));
        assert!(is_closed_under(
            &descendants_program(),
            &bigger,
            MatchPolicy::Strict
        ));
        assert!(le(&c.object, &bigger));
        assert_ne!(c.object, bigger);
    }

    #[test]
    fn example_4_6_infinite_lists_diverge() {
        // [list: {1}].
        // [list: {[head: 1, tail: X]}] :- [list: {X}].
        let program = Program::from_rules([
            Rule::fact(wff!([list: {1}])).unwrap(),
            Rule::new(
                wff!([list: {[head: 1, tail: (x())]}]),
                wff!([list: {(x())}]),
            )
            .unwrap(),
        ]);
        let r = closure(
            &program,
            &obj!([list: {}]),
            ClosureMode::Inflationary,
            MatchPolicy::Strict,
            ClosureLimits {
                max_iterations: 50,
                max_depth: 30,
                ..ClosureLimits::default()
            },
        );
        match r {
            Err(CalculusError::Diverged {
                iterations,
                partial,
                ..
            }) => {
                assert!(iterations > 1);
                // The partial result contains ever-deeper lists.
                assert!(measure::size(&partial) > 3);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn non_recursive_program_converges_in_two_steps() {
        let p =
            Program::from_rules([Rule::new(wff!([out: {(x())}]), wff!([src: {(x())}])).unwrap()]);
        let db = obj!([src: {1, 2}]);
        let c = closure(
            &p,
            &db,
            ClosureMode::Inflationary,
            MatchPolicy::Strict,
            ClosureLimits::default(),
        )
        .unwrap();
        assert_eq!(c.object, obj!([src: {1, 2}, out: {1, 2}]));
        assert_eq!(c.iterations, 2);
    }

    #[test]
    fn paper_literal_mode_agrees_when_rules_rederive_input() {
        // The descendants program re-derives nothing about `family`, so
        // PaperLiteral drops the family relation: its fixpoint (if reached)
        // differs. Demonstrate on a self-rederiving program instead.
        let p = Program::from_rules([
            Rule::new(wff!([r: {(x())}]), wff!([r: {(x())}])).unwrap(),
            Rule::new(wff!([r: {2}]), wff!([r: {1}])).unwrap(),
        ]);
        let db = obj!([r: {1}]);
        let inflationary = closure(
            &p,
            &db,
            ClosureMode::Inflationary,
            MatchPolicy::Strict,
            ClosureLimits::default(),
        )
        .unwrap();
        let literal = closure(
            &p,
            &db,
            ClosureMode::PaperLiteral,
            MatchPolicy::Strict,
            ClosureLimits::default(),
        )
        .unwrap();
        assert_eq!(inflationary.object, obj!([r: {1, 2}]));
        assert_eq!(literal.object, inflationary.object);
    }

    #[test]
    fn paper_literal_mode_can_lose_the_input() {
        // A lone projection rule: PaperLiteral's second iterate forgets r1.
        let p =
            Program::from_rules([Rule::new(wff!([out: {(x())}]), wff!([r1: {(x())}])).unwrap()]);
        let db = obj!([r1: {1}]);
        let r = closure(
            &p,
            &db,
            ClosureMode::PaperLiteral,
            MatchPolicy::Strict,
            ClosureLimits {
                max_iterations: 10,
                ..ClosureLimits::default()
            },
        );
        // O2 = [out: {1}], O3 = ⊥, O4 = ⊥ = O3 → converges to ⊥,
        // which does NOT contain the input database.
        let c = r.unwrap();
        assert_eq!(c.object, Object::Bottom);
        assert!(!le(&db, &c.object));
    }

    #[test]
    fn empty_program_closes_immediately() {
        let c = closure(
            &Program::new(),
            &obj!([r: {1}]),
            ClosureMode::Inflationary,
            MatchPolicy::Strict,
            ClosureLimits::default(),
        )
        .unwrap();
        assert_eq!(c.object, obj!([r: {1}]));
        assert_eq!(c.iterations, 1);
    }
}

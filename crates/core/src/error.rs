//! Error types for the calculus.

use crate::Var;
use co_object::{Attr, Object};
use std::fmt;

/// Errors produced when building formulae/rules or computing closures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CalculusError {
    /// A tuple formula used the same attribute twice (Definition 4.1(iii)
    /// requires distinct attribute names).
    DuplicateAttribute(Attr),
    /// A rule head used a variable that does not occur in the body
    /// (violates Definition 4.3).
    HeadVariableNotInBody(Var),
    /// Closure iteration exceeded its limits — the program likely has no
    /// finite closure (paper Example 4.6).
    Diverged {
        /// Iterations performed before giving up.
        iterations: u64,
        /// Human-readable description of the exceeded limit.
        reason: String,
        /// The last database state computed.
        partial: Box<Object>,
    },
}

impl fmt::Display for CalculusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalculusError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute `{a}` in tuple formula")
            }
            CalculusError::HeadVariableNotInBody(v) => write!(
                f,
                "head variable `{v}` does not occur in the rule body (Definition 4.3)"
            ),
            CalculusError::Diverged {
                iterations, reason, ..
            } => write!(
                f,
                "closure did not converge after {iterations} iterations: {reason}"
            ),
        }
    }
}

impl std::error::Error for CalculusError {}

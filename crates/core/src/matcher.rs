//! The matcher: enumerating the substitutions `σ` with `σE ≤ O`.
//!
//! # Algorithm
//!
//! `σE ≤ O` decomposes by the structure of `E` (Definition 3.1):
//!
//! - constants must equal the corresponding part of `O` (or the part is ⊤);
//! - a tuple formula walks attribute-wise into `O` (missing attributes read
//!   as ⊥ — a dead end for every formula shape except variables and ⊥);
//! - a **set formula member picks a witness element** of the corresponding
//!   set in `O` — the only source of nondeterminism;
//! - a variable occurrence `X` against part `U` contributes the constraint
//!   `σX ≤ U`.
//!
//! For a fixed assignment of witnesses (a *choice function*), the variable
//! constraints `σX ≤ U₁, …, σX ≤ Uₖ` have the maximal solution
//! `σX = U₁ ∩ … ∩ Uₖ` — this is where the lattice structure (Theorem 3.6)
//! does real work. The matcher backtracks over choice functions,
//! accumulating per-variable glbs with an undo trail, and emits one maximal
//! substitution per choice function, deduplicated.
//!
//! Every satisfying substitution is pointwise below one of the emitted ones,
//! and instantiation is monotone, so unions over the emitted substitutions
//! (Definitions 4.2 and 4.4) equal unions over *all* satisfying
//! substitutions. The property tests in this module and in
//! `tests/calculus_semantics.rs` check exactly this soundness/maximality
//! contract.
//!
//! # Policies
//!
//! [`MatchPolicy::Literal`] keeps every emitted substitution — Definition
//! 4.4 verbatim. [`MatchPolicy::Strict`] (the default) additionally drops
//! substitutions that bind a variable to ⊥, matching the paper's prose
//! semantics for its §4 examples (see DESIGN.md §3.3 for the join anomaly
//! that motivates this).

use crate::{Formula, Substitution, Var};
use co_object::lattice::intersect;
use co_object::{Object, Set};
use rustc_hash::{FxHashMap, FxHashSet};

/// Which substitutions count as matches (see module docs and DESIGN.md §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MatchPolicy {
    /// Discard substitutions binding any variable to ⊥. Matches the paper's
    /// prose semantics (joins join, selections on a missing attribute fail).
    #[default]
    Strict,
    /// Definition 4.4 verbatim: ⊥ bindings allowed.
    Literal,
}

/// A prefilter can narrow the witness candidates the matcher tries for a
/// set-formula member — the hook through which `co-engine` plugs in
/// attribute-value indexes. Implementations must be **sound**: the returned
/// candidate index list must contain every element the member could match
/// under the current bindings. `None` means "no information, try all".
pub trait Prefilter {
    /// Candidate element indices of `set` for matching `member`, given a
    /// lookup for the variable bindings accumulated so far.
    fn candidates(
        &self,
        set: &Set,
        member: &Formula,
        bindings: &dyn Fn(Var) -> Option<Object>,
    ) -> Option<Vec<usize>>;
}

/// The trivial prefilter: always scan.
pub struct ScanAll;

impl Prefilter for ScanAll {
    fn candidates(
        &self,
        _set: &Set,
        _member: &Formula,
        _bindings: &dyn Fn(Var) -> Option<Object>,
    ) -> Option<Vec<usize>> {
        None
    }
}

/// Running statistics of a match run, for the engine's reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Witness candidates tried across all choice points.
    pub candidates_tried: u64,
    /// Substitutions emitted before deduplication and policy filtering.
    pub raw_matches: u64,
    /// Substitutions surviving deduplication and policy filtering.
    pub matches: u64,
}

impl MatchStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: MatchStats) {
        self.candidates_tried += other.candidates_tried;
        self.raw_matches += other.raw_matches;
        self.matches += other.matches;
    }
}

/// One conjunctive sub-goal. `Copy` (all references) so the search can push
/// goals back verbatim when unwinding, keeping sibling alternatives sound.
#[derive(Clone, Copy)]
enum Goal<'a> {
    /// `σf ≤ o`, structurally.
    Sub(&'a Formula, &'a Object),
    /// Remaining members of a set formula, each needing a witness in `set`.
    Members(&'a [Formula], &'a Set),
}

struct Search<'a> {
    policy: MatchPolicy,
    prefilter: &'a dyn Prefilter,
    bindings: FxHashMap<Var, Object>,
    trail: Vec<(Var, Option<Object>)>,
    out: FxHashSet<Substitution>,
    vars: &'a [Var],
    stats: MatchStats,
}

impl<'a> Search<'a> {
    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (v, old) = self.trail.pop().expect("trail underflow");
            match old {
                Some(o) => {
                    self.bindings.insert(v, o);
                }
                None => {
                    self.bindings.remove(&v);
                }
            }
        }
    }

    /// Meets `v`'s binding with `o`, recording the old value on the trail;
    /// returns the new binding.
    ///
    /// Interned handles make the common cases O(1): re-meeting an equal
    /// subtree (`cur == o`, a pointer check) keeps the current handle, and
    /// "clones" are reference bumps, never deep copies.
    fn meet(&mut self, v: Var, o: &Object) -> Object {
        let old = self.bindings.get(&v).cloned();
        let new = match &old {
            Some(cur) if cur == o => cur.clone(),
            Some(cur) => intersect(cur, o),
            None => o.clone(),
        };
        self.trail.push((v, old));
        self.bindings.insert(v, new.clone());
        new
    }

    fn emit(&mut self) {
        self.stats.raw_matches += 1;
        let subst = Substitution::from_pairs(self.vars.iter().map(|v| {
            (
                *v,
                // Unconstrained variables (only possible via ⊤ parts of the
                // database) get the maximal binding ⊤.
                self.bindings.get(v).cloned().unwrap_or(Object::Top),
            )
        }));
        if self.policy == MatchPolicy::Strict && subst.has_bottom_binding() {
            return;
        }
        self.out.insert(subst);
    }

    /// Depth-first search over the conjunctive goal stack. On return the
    /// stack and the binding map are exactly as on entry (the trail restores
    /// bindings at each choice point; goals are pushed back verbatim).
    fn solve(&mut self, stack: &mut Vec<Goal<'a>>) {
        let Some(goal) = stack.pop() else {
            self.emit();
            return;
        };
        match goal {
            Goal::Sub(f, o) => self.solve_sub(f, o, stack),
            Goal::Members(ms, s) => self.solve_members(ms, s, stack),
        }
        stack.push(goal);
    }

    fn solve_sub(&mut self, f: &'a Formula, o: &'a Object, stack: &mut Vec<Goal<'a>>) {
        match (f, o) {
            // σ⊥ = ⊥ ≤ anything.
            (Formula::Bottom, _) => self.solve(stack),
            // Everything is ≤ ⊤: variables below stay unconstrained.
            (_, Object::Top) => self.solve(stack),
            (Formula::Var(v), _) => {
                let mark = self.mark();
                let new = self.meet(*v, o);
                // A ⊥ binding only shrinks further; under Strict it can
                // never reach an emitted substitution, so prune here.
                if !(self.policy == MatchPolicy::Strict && new.is_bottom()) {
                    self.solve(stack);
                }
                self.undo_to(mark);
            }
            (Formula::Atom(a), Object::Atom(b)) if a == b => self.solve(stack),
            (Formula::Tuple(entries), Object::Tuple(_)) => {
                let depth = stack.len();
                for (attr, fe) in entries {
                    // Missing attributes read as ⊥; only ⊥/variable formulas
                    // survive a ⊥ part, which the arms above handle.
                    stack.push(Goal::Sub(fe, o.dot(*attr)));
                }
                self.solve(stack);
                stack.truncate(depth);
            }
            (Formula::Set(members), Object::Set(s)) => {
                let depth = stack.len();
                stack.push(Goal::Members(members.as_slice(), s));
                self.solve(stack);
                stack.truncate(depth);
            }
            // Structural mismatch (atom vs tuple, tuple vs ⊥, …): no match.
            _ => {}
        }
    }

    fn solve_members(&mut self, members: &'a [Formula], set: &'a Set, stack: &mut Vec<Goal<'a>>) {
        let Some((first, rest)) = members.split_first() else {
            self.solve(stack);
            return;
        };
        let candidates = {
            let bindings = &self.bindings;
            let lookup = |v: Var| bindings.get(&v).cloned();
            self.prefilter.candidates(set, first, &lookup)
        };
        match candidates {
            Some(idxs) => {
                for i in idxs {
                    if let Some(e) = set.elements().get(i) {
                        self.try_witness(first, rest, set, e, stack);
                    }
                }
            }
            None => {
                // Iterate by index rather than `set.iter()` so the borrow of
                // `set` is independent of the loop body.
                for e in set.elements() {
                    self.try_witness(first, rest, set, e, stack);
                }
            }
        }
    }

    fn try_witness(
        &mut self,
        first: &'a Formula,
        rest: &'a [Formula],
        set: &'a Set,
        e: &'a Object,
        stack: &mut Vec<Goal<'a>>,
    ) {
        self.stats.candidates_tried += 1;
        let mark = self.mark();
        let depth = stack.len();
        stack.push(Goal::Members(rest, set));
        stack.push(Goal::Sub(first, e));
        self.solve(stack);
        stack.truncate(depth);
        self.undo_to(mark);
    }
}

/// Enumerates the (maximal, deduplicated) substitutions `σ` with `σf ≤ o`,
/// under `policy`, consulting `prefilter` at set-member choice points.
///
/// The returned substitutions are total over `f.variables()` and sorted in a
/// deterministic order.
pub fn match_with(
    f: &Formula,
    o: &Object,
    policy: MatchPolicy,
    prefilter: &dyn Prefilter,
) -> (Vec<Substitution>, MatchStats) {
    let vars = f.variables();
    let mut search = Search {
        policy,
        prefilter,
        bindings: FxHashMap::default(),
        trail: Vec::new(),
        out: FxHashSet::default(),
        vars: &vars,
        stats: MatchStats::default(),
    };
    let mut stack = Vec::new();
    stack.push(Goal::Sub(f, o));
    search.solve(&mut stack);
    search.stats.matches = search.out.len() as u64;
    let mut result: Vec<Substitution> = search.out.into_iter().collect();
    result.sort_by(|a, b| a.iter().cmp(b.iter()));
    (result, search.stats)
}

/// [`match_with`] with the scan-everything prefilter.
pub fn matches(f: &Formula, o: &Object, policy: MatchPolicy) -> Vec<Substitution> {
    match_with(f, o, policy, &ScanAll).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wff;
    use co_object::obj;
    use co_object::order::le;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }
    fn z() -> Var {
        Var::new("Z")
    }

    #[test]
    fn ground_formula_matches_iff_le() {
        let db = obj!([r1: {1, 2}]);
        assert_eq!(matches(&wff!([r1: {1}]), &db, MatchPolicy::Strict).len(), 1);
        assert_eq!(matches(&wff!([r1: {3}]), &db, MatchPolicy::Strict).len(), 0);
        assert_eq!(matches(&wff!(bot), &db, MatchPolicy::Strict).len(), 1);
    }

    #[test]
    fn variable_binds_to_part() {
        let db = obj!([r1: {1, 2}]);
        let f = wff!([r1: (x())]);
        let ms = matches(&f, &db, MatchPolicy::Strict);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!({1, 2})));
    }

    #[test]
    fn set_member_variable_enumerates_elements() {
        let db = obj!([r1: {1, 2, 3}]);
        let f = wff!([r1: {(x())}]);
        let ms = matches(&f, &db, MatchPolicy::Strict);
        let bound: Vec<&Object> = ms.iter().map(|s| s.get(x()).unwrap()).collect();
        assert_eq!(bound.len(), 3);
        assert!(bound.contains(&&obj!(1)));
        assert!(bound.contains(&&obj!(2)));
        assert!(bound.contains(&&obj!(3)));
    }

    #[test]
    fn selection_pattern_example_4_1_1() {
        // [R1: {[A: X, B: b]}] — select R1 tuples with B = b, bind X to A.
        let db = obj!([r1: {[a: 1, b: b], [a: 2, b: c], [a: 3, b: b]}]);
        let f = wff!([r1: {[a: (x()), b: b]}]);
        let ms = matches(&f, &db, MatchPolicy::Strict);
        let bound: Vec<&Object> = ms.iter().map(|s| s.get(x()).unwrap()).collect();
        assert_eq!(bound.len(), 2);
        assert!(bound.contains(&&obj!(1)));
        assert!(bound.contains(&&obj!(3)));
    }

    #[test]
    fn shared_variable_joins_via_glb() {
        // [R1: {[a: X]}, R2: {[b: X]}] — X must fit both sides.
        let db = obj!([r1: {[a: 1], [a: 2]}, r2: {[b: 2], [b: 3]}]);
        let f = wff!([r1: {[a: (x())]}, r2: {[b: (x())]}]);
        let strict = matches(&f, &db, MatchPolicy::Strict);
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].get(x()), Some(&obj!(2)));
        // Literal keeps the ⊥-joined pairs too: (1,2),(1,3),(2,3) give
        // X = ⊥ (deduplicated to one substitution), plus (2,2) gives X = 2.
        let literal = matches(&f, &db, MatchPolicy::Literal);
        assert_eq!(literal.len(), 2);
        assert!(literal.iter().any(|s| s.get(x()) == Some(&Object::Bottom)));
        assert!(literal.iter().any(|s| s.get(x()) == Some(&obj!(2))));
    }

    #[test]
    fn join_binds_through_two_relations() {
        // Example 4.2(3) body: [R1: {[A:X, B:Y]}, R2: {[C:Y, D:Z]}].
        let db = obj!([
            r1: {[a: 1, b: 10], [a: 2, b: 20]},
            r2: {[c: 10, d: 100], [c: 30, d: 300]}
        ]);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y()), d: (z())]}]);
        let ms = matches(&f, &db, MatchPolicy::Strict);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(1)));
        assert_eq!(ms[0].get(y()), Some(&obj!(10)));
        assert_eq!(ms[0].get(z()), Some(&obj!(100)));
    }

    #[test]
    fn missing_attribute_fails_constants_but_not_variables() {
        let db = obj!([r1: {[a: 1]}]);
        // Constant against missing attribute: no match.
        assert!(matches(&wff!([r1: {[b: 5]}]), &db, MatchPolicy::Strict).is_empty());
        // Variable against missing attribute: binds ⊥ — dropped by Strict,
        // kept by Literal.
        let f = wff!([r1: {[b: (x())]}]);
        assert!(matches(&f, &db, MatchPolicy::Strict).is_empty());
        let lit = matches(&f, &db, MatchPolicy::Literal);
        assert_eq!(lit.len(), 1);
        assert_eq!(lit[0].get(x()), Some(&Object::Bottom));
    }

    #[test]
    fn empty_set_formula_matches_any_set() {
        let db = obj!([r1: {1}]);
        assert_eq!(matches(&wff!([r1: {}]), &db, MatchPolicy::Strict).len(), 1);
        // But not a non-set.
        let db2 = obj!([r1: 5]);
        assert!(matches(&wff!([r1: {}]), &db2, MatchPolicy::Strict).is_empty());
    }

    #[test]
    fn set_member_formula_against_empty_set_fails() {
        let db = obj!([r1: {}]);
        assert!(matches(&wff!([r1: {(x())}]), &db, MatchPolicy::Strict).is_empty());
    }

    #[test]
    fn two_members_can_share_a_witness() {
        // {X, Y} against {1}: both members choose the single element.
        let db = obj!({ 1 });
        let f = wff!({(x()), (y())});
        let ms = matches(&f, &db, MatchPolicy::Strict);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(1)));
        assert_eq!(ms[0].get(y()), Some(&obj!(1)));
    }

    #[test]
    fn sibling_constraints_hold_across_backtracking() {
        // Regression guard for the goal-stack restore logic: the shared Y
        // constraint must be re-checked for every witness choice of the
        // first member.
        let db = obj!([r1: {[a: 1, k: 7], [a: 2, k: 8]}, r2: {[b: 7]}]);
        let f = wff!([r1: {[a: (x()), k: (y())]}, r2: {[b: (y())]}]);
        let ms = matches(&f, &db, MatchPolicy::Strict);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&obj!(1)));
        assert_eq!(ms[0].get(y()), Some(&obj!(7)));
    }

    #[test]
    fn nested_set_formulas() {
        // Example 4.5's body shape: nested set matching two levels deep.
        let db = obj!([family: {
            [name: abraham, children: {[name: isaac]}],
            [name: isaac, children: {[name: esau], [name: jacob]}]
        }]);
        let f = wff!([family: {[name: (y()), children: {[name: (x())]}]}]);
        let ms = matches(&f, &db, MatchPolicy::Strict);
        let pairs: Vec<(String, String)> = ms
            .iter()
            .map(|s| {
                (
                    s.get(y()).unwrap().to_string(),
                    s.get(x()).unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&("abraham".into(), "isaac".into())));
        assert!(pairs.contains(&("isaac".into(), "esau".into())));
        assert!(pairs.contains(&("isaac".into(), "jacob".into())));
    }

    #[test]
    fn matching_against_top_leaves_variables_unconstrained() {
        let db = obj!([r1: top]);
        let f = wff!([r1: {[a: (x())]}]);
        let ms = matches(&f, &db, MatchPolicy::Strict);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x()), Some(&Object::Top));
    }

    #[test]
    fn soundness_every_emitted_substitution_satisfies_le() {
        let db = obj!([
            r1: {[a: 1, b: 10], [a: 2, b: 20], [a: 2]},
            r2: {[c: 10], [c: 20, d: 5]}
        ]);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y())]}]);
        for policy in [MatchPolicy::Strict, MatchPolicy::Literal] {
            for s in matches(&f, &db, policy) {
                let inst = f.instantiate(&s);
                assert!(le(&inst, &db), "σE = {inst} is not ≤ db for σ = {s}");
            }
        }
    }

    #[test]
    fn duplicate_choice_functions_dedupe() {
        // Two members matching the same element produce one substitution,
        // not |choices|².
        let db = obj!({[a: 1]});
        let f = wff!({[a: (x())], [a: (x())]});
        assert_eq!(matches(&f, &db, MatchPolicy::Strict).len(), 1);
    }

    #[test]
    fn variable_repeated_across_tuple_positions_takes_glb() {
        let db = obj!([p: {1, 2}, q: {1, 3}]);
        let f = wff!([p: (x()), q: (x())]);
        let ms = matches(&f, &db, MatchPolicy::Strict);
        assert_eq!(ms.len(), 1);
        // X ≤ {1,2} and X ≤ {1,3}: maximal X is the glb {1}.
        assert_eq!(ms[0].get(x()), Some(&obj!({ 1 })));
    }

    #[test]
    fn stats_are_populated() {
        let db = obj!([r1: {1, 2, 3}]);
        let f = wff!([r1: {(x())}]);
        let (ms, stats) = match_with(&f, &db, MatchPolicy::Strict, &ScanAll);
        assert_eq!(ms.len(), 3);
        assert_eq!(stats.candidates_tried, 3);
        assert_eq!(stats.matches, 3);
    }
}

//! Rule application (paper Definition 4.4):
//!
//! > `r(O) = ∪ { σφ | σ such that σφ' ≤ O }`
//!
//! Unlike interpretation, a rule can *generate new structure*: the head may
//! rename attributes, drop them, introduce constants, or re-nest bindings.
//! Monotonicity (Lemma 4.1) still holds — checked by the property tests in
//! `tests/calculus_semantics.rs`.

use crate::matcher::{match_with, MatchPolicy, MatchStats, Prefilter, ScanAll};
use crate::{Program, Rule, Substitution};
use co_object::lattice::{union, union_many};
use co_object::Object;

/// `r(O)` — the effect of one rule on an object (Definition 4.4).
///
/// ```
/// use co_calculus::{apply_rule, wff, MatchPolicy, Rule, Var};
/// use co_object::obj;
///
/// // Example 4.2(2): [R: {X}] :- [R1: {[A: X, B: b]}]
/// // "Selection of R1 on B = b, projection on A, assignment to R."
/// let x = Var::new("X");
/// let r = Rule::new(wff!([r: {(x)}]), wff!([r1: {[a: (x), b: b]}])).unwrap();
/// let db = obj!([r1: {[a: 1, b: b], [a: 2, b: c]}]);
/// assert_eq!(apply_rule(&r, &db, MatchPolicy::Strict), obj!([r: {1}]));
/// ```
pub fn apply_rule(rule: &Rule, o: &Object, policy: MatchPolicy) -> Object {
    apply_rule_with(rule, o, policy, &ScanAll).0
}

/// [`apply_rule`] with an explicit prefilter and statistics.
pub fn apply_rule_with(
    rule: &Rule,
    o: &Object,
    policy: MatchPolicy,
    prefilter: &dyn Prefilter,
) -> (Object, MatchStats) {
    let (substs, stats) = match_with(rule.body(), o, policy, prefilter);
    let result = union_many(substs.iter().map(|s| rule.head().instantiate(s)));
    (result, stats)
}

/// The derivations of one rule application: each satisfying substitution
/// paired with the head instantiation it contributes.
pub fn derivations(rule: &Rule, o: &Object, policy: MatchPolicy) -> Vec<(Substitution, Object)> {
    match_with(rule.body(), o, policy, &ScanAll)
        .0
        .into_iter()
        .map(|s| {
            let h = rule.head().instantiate(&s);
            (s, h)
        })
        .collect()
}

/// `R(O) = ∪ { r(O) | r ∈ R }` — the one-step consequence operator of a
/// rule set (used by Definition 4.5's closure condition `R(O) ≤ O`).
pub fn apply_program(program: &Program, o: &Object, policy: MatchPolicy) -> Object {
    apply_program_with(program, o, policy, &ScanAll).0
}

/// [`apply_program`] with an explicit prefilter and statistics.
pub fn apply_program_with(
    program: &Program,
    o: &Object,
    policy: MatchPolicy,
    prefilter: &dyn Prefilter,
) -> (Object, MatchStats) {
    let mut acc = Object::Bottom;
    let mut stats = MatchStats::default();
    for r in program.rules() {
        let (contribution, s) = apply_rule_with(r, o, policy, prefilter);
        stats.merge(s);
        acc = union(&acc, &contribution);
    }
    (acc, stats)
}

/// Definition 4.5: `O` is closed under `r` when `r(O) ≤ O`.
pub fn is_closed_under_rule(rule: &Rule, o: &Object, policy: MatchPolicy) -> bool {
    co_object::order::le(&apply_rule(rule, o, policy), o)
}

/// Definition 4.5: `O` is closed under `R` when it is closed under every
/// rule of `R`.
pub fn is_closed_under(program: &Program, o: &Object, policy: MatchPolicy) -> bool {
    program
        .rules()
        .iter()
        .all(|r| is_closed_under_rule(r, o, policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{wff, Var};
    use co_object::obj;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }
    fn z() -> Var {
        Var::new("Z")
    }

    fn rel_db() -> Object {
        obj!([
            r1: {[a: 1, b: 10], [a: 2, b: 20], [a: 3, b: 30]},
            r2: {[c: 10, d: 100], [c: 20, d: 200], [c: 99, d: 999]}
        ])
    }

    #[test]
    fn example_4_2_1_selection_projection_rename() {
        // [R: {[C: X]}] :- [R1: {[A: X, B: b]}]
        let db = obj!([r1: {[a: 1, b: b], [a: 2, b: c], [a: 3, b: b]}]);
        let r = Rule::new(wff!([r: {[c: (x())]}]), wff!([r1: {[a: (x()), b: b]}])).unwrap();
        assert_eq!(
            apply_rule(&r, &db, MatchPolicy::Strict),
            obj!([r: {[c: 1], [c: 3]}])
        );
    }

    #[test]
    fn example_4_2_2_projection_to_set_of_atoms() {
        // [R: {X}] :- [R1: {[A: X, B: b]}]
        let db = obj!([r1: {[a: 1, b: b], [a: 2, b: c]}]);
        let r = Rule::new(wff!([r: {(x())}]), wff!([r1: {[a: (x()), b: b]}])).unwrap();
        assert_eq!(apply_rule(&r, &db, MatchPolicy::Strict), obj!([r: {1}]));
    }

    #[test]
    fn example_4_2_3_join() {
        // [R: {[A: X, D: Z]}] :- [R1: {[A:X, B:Y]}, R2: {[C:Y, D:Z]}]
        let r = Rule::new(
            wff!([r: {[a: (x()), d: (z())]}]),
            wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y()), d: (z())]}]),
        )
        .unwrap();
        let out = apply_rule(&r, &rel_db(), MatchPolicy::Strict);
        // Join on B = C keeps (1,100) and (2,200) — NOT the cross product.
        assert_eq!(out, obj!([r: {[a: 1, d: 100], [a: 2, d: 200]}]));
    }

    #[test]
    fn join_under_literal_policy_degenerates_to_cross_product() {
        // The DESIGN.md §3.3 anomaly, pinned as a test: Definition 4.4
        // verbatim admits Y ↦ ⊥, which erases the join condition.
        let r = Rule::new(
            wff!([r: {[a: (x()), d: (z())]}]),
            wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y()), d: (z())]}]),
        )
        .unwrap();
        let out = apply_rule(&r, &rel_db(), MatchPolicy::Literal);
        let rset = out.dot("r").as_set().unwrap();
        // 3 × 3 pairs.
        assert_eq!(rset.len(), 9);
    }

    #[test]
    fn example_4_2_4_join_with_renaming() {
        // [R: {[A1: X, A2: Z]}] :- same body.
        let r = Rule::new(
            wff!([r: {[a1: (x()), a2: (z())]}]),
            wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y()), d: (z())]}]),
        )
        .unwrap();
        assert_eq!(
            apply_rule(&r, &rel_db(), MatchPolicy::Strict),
            obj!([r: {[a1: 1, a2: 100], [a1: 2, a2: 200]}])
        );
    }

    #[test]
    fn example_4_2_5_intersection() {
        // [R: {X}] :- [R1: {X}, R2: {X}]
        let db = obj!([r1: {1, 2, 3}, r2: {2, 3, 4}]);
        let r = Rule::new(wff!([r: {(x())}]), wff!([r1: {(x())}, r2: {(x())}])).unwrap();
        assert_eq!(apply_rule(&r, &db, MatchPolicy::Strict), obj!([r: {2, 3}]));
    }

    #[test]
    fn example_4_2_6_intersection_to_bare_set() {
        // {X} :- [R1: {X}, R2: {X}] — "simply generating a set".
        let db = obj!([r1: {1, 2, 3}, r2: {2, 3, 4}]);
        let r = Rule::new(wff!({ (x()) }), wff!([r1: {(x())}, r2: {(x())}])).unwrap();
        assert_eq!(apply_rule(&r, &db, MatchPolicy::Strict), obj!({2, 3}));
    }

    #[test]
    fn example_4_2_7_intersection_after_renaming() {
        // {[A1: X, A2: Y]} :- [R1: {[A:X, B:Y]}, R2: {[C:X, D:Y]}]
        let db = obj!([
            r1: {[a: 1, b: 2], [a: 5, b: 6]},
            r2: {[c: 1, d: 2], [c: 7, d: 8]}
        ]);
        let r = Rule::new(
            wff!({[a1: (x()), a2: (y())]}),
            wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (x()), d: (y())]}]),
        )
        .unwrap();
        assert_eq!(
            apply_rule(&r, &db, MatchPolicy::Strict),
            obj!({[a1: 1, a2: 2]})
        );
    }

    #[test]
    fn facts_contribute_their_head() {
        let f = Rule::fact(wff!([doa: {abraham}])).unwrap();
        assert_eq!(
            apply_rule(&f, &Object::Bottom, MatchPolicy::Strict),
            obj!([doa: {abraham}])
        );
    }

    #[test]
    fn rule_with_no_matches_yields_bottom() {
        let r = Rule::new(wff!([r: {(x())}]), wff!([nope: {(x())}])).unwrap();
        assert_eq!(
            apply_rule(&r, &rel_db(), MatchPolicy::Strict),
            Object::Bottom
        );
    }

    #[test]
    fn program_application_unions_rule_effects() {
        let p = Program::from_rules([
            Rule::fact(wff!([out: {0}])).unwrap(),
            Rule::new(wff!([out: {(x())}]), wff!([r1: {[a: (x()), b: 10]}])).unwrap(),
        ]);
        assert_eq!(
            apply_program(&p, &rel_db(), MatchPolicy::Strict),
            obj!([out: {0, 1}])
        );
    }

    #[test]
    fn closedness_checks() {
        let p = Program::from_rules([Rule::new(wff!([r1: {(x())}]), wff!([r1: {(x())}])).unwrap()]);
        // Any database is closed under the identity-ish rule: it re-derives
        // a sub-object of r1.
        assert!(is_closed_under(&p, &rel_db(), MatchPolicy::Strict));

        let gen =
            Program::from_rules([Rule::new(wff!([r2: {(x())}]), wff!([r1: {(x())}])).unwrap()]);
        let db = obj!([r1: {1}, r2: {}]);
        assert!(!is_closed_under(&gen, &db, MatchPolicy::Strict));
        let closed = obj!([r1: {1}, r2: {1}]);
        assert!(is_closed_under(&gen, &closed, MatchPolicy::Strict));
    }

    #[test]
    fn derivations_expose_substitutions() {
        let db = obj!([r1: {1, 2}]);
        let r = Rule::new(wff!([r: {(x())}]), wff!([r1: {(x())}])).unwrap();
        let ds = derivations(&r, &db, MatchPolicy::Strict);
        assert_eq!(ds.len(), 2);
        for (s, h) in &ds {
            assert_eq!(&r.head().instantiate(s), h);
        }
    }
}

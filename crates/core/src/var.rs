//! Interned variable names.
//!
//! The paper adopts "the Prolog notation for variables and constants":
//! identifiers starting with an upper-case letter are variables. Variables
//! are interned exactly like attribute names (`co_object::Attr`) so that the
//! matcher's hot path hashes and compares 4-byte ids.

use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::Arc;
use std::sync::{OnceLock, RwLock};

/// An interned variable name (e.g. `X`, `Name2`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

struct Interner {
    names: Vec<Arc<str>>,
    ids: FxHashMap<Arc<str>, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            ids: FxHashMap::default(),
        })
    })
}

impl Var {
    /// Interns `name` and returns its handle. Idempotent.
    pub fn new(name: impl AsRef<str>) -> Var {
        let name = name.as_ref();
        {
            let guard = interner().read().expect("var interner poisoned");
            if let Some(&id) = guard.ids.get(name) {
                return Var(id);
            }
        }
        let mut guard = interner().write().expect("var interner poisoned");
        if let Some(&id) = guard.ids.get(name) {
            return Var(id);
        }
        let id = u32::try_from(guard.names.len()).expect("variable interner overflow");
        let arc: Arc<str> = Arc::from(name);
        guard.names.push(arc.clone());
        guard.ids.insert(arc, id);
        Var(id)
    }

    /// The variable's name.
    pub fn name(self) -> Arc<str> {
        interner().read().expect("var interner poisoned").names[self.0 as usize].clone()
    }

    /// The raw interning id (process-local).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.name())
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Var::new("X"), Var::new("X"));
        assert_ne!(Var::new("X"), Var::new("Y"));
        assert_eq!(&*Var::new("Xyz").name(), "Xyz");
    }

    #[test]
    fn display_is_the_name() {
        assert_eq!(Var::new("Child").to_string(), "Child");
    }
}

//! Interpretation of well-formed formulae (paper Definition 4.2):
//!
//! > `E(O) = ∪ { σE | σ such that σE ≤ O }`
//!
//! The interpretation *extracts* data: since each instantiation is a
//! sub-object of `O` and union is the lub, `E(O) ≤ O` always — "a
//! well-formed formula can extract data from an object but never generate
//! new data".

use crate::matcher::{match_with, MatchPolicy, MatchStats, Prefilter, ScanAll};
use crate::{Formula, Substitution};
use co_object::lattice::union_many;
use co_object::Object;

/// `E(O)` under the given policy (see [`MatchPolicy`]).
///
/// ```
/// use co_calculus::{interpret, wff, MatchPolicy, Var};
/// use co_object::obj;
///
/// // Example 4.1(1): [R1: {[A: X, B: b]}] — "relation R1 selected on
/// // attribute B = b" (projected on A and B).
/// let db = obj!([r1: {[a: 1, b: b], [a: 2, b: c]}]);
/// let f = wff!([r1: {[a: (Var::new("X")), b: b]}]);
/// assert_eq!(
///     interpret(&f, &db, MatchPolicy::Strict),
///     obj!([r1: {[a: 1, b: b]}])
/// );
/// ```
pub fn interpret(f: &Formula, o: &Object, policy: MatchPolicy) -> Object {
    interpret_with(f, o, policy, &ScanAll).0
}

/// [`interpret`] with an explicit prefilter and statistics.
pub fn interpret_with(
    f: &Formula,
    o: &Object,
    policy: MatchPolicy,
    prefilter: &dyn Prefilter,
) -> (Object, MatchStats) {
    let (substs, stats) = match_with(f, o, policy, prefilter);
    let result = union_many(substs.iter().map(|s| f.instantiate(s)));
    (result, stats)
}

/// The matches of `f` against `o` paired with their instantiations —
/// the "certificates" of an interpretation, useful for tracing and tests.
pub fn certificates(f: &Formula, o: &Object, policy: MatchPolicy) -> Vec<(Substitution, Object)> {
    match_with(f, o, policy, &ScanAll)
        .0
        .into_iter()
        .map(|s| {
            let inst = f.instantiate(&s);
            (s, inst)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{wff, Var};
    use co_object::obj;
    use co_object::order::le;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }
    fn z() -> Var {
        Var::new("Z")
    }

    /// The database used for the Example 4.1 walkthrough in Section 4.
    fn sample_db() -> Object {
        obj!([
            r1: {[a: 1, b: 10], [a: 2, b: 20], [a: 3, b: 30]},
            r2: {[c: 10, d: 100], [c: 20, d: 200], [c: 99, d: 999]}
        ])
    }

    #[test]
    fn interpretation_is_a_subobject_of_the_database() {
        let db = sample_db();
        for f in [
            wff!([r1: {[a: (x()), b: (y())]}]),
            wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y()), d: (z())]}]),
            wff!([r1: (x()), r2: (y())]),
            wff!([r1: {(x())}, r2: {(y())}]),
        ] {
            for policy in [MatchPolicy::Strict, MatchPolicy::Literal] {
                let e = interpret(&f, &db, policy);
                assert!(le(&e, &db), "E(O) = {e} not ≤ O for {f}");
            }
        }
    }

    #[test]
    fn no_match_interprets_to_bottom() {
        let db = sample_db();
        let f = wff!([r9: {(x())}]);
        assert_eq!(interpret(&f, &db, MatchPolicy::Strict), Object::Bottom);
    }

    #[test]
    fn example_4_1_2_semijoin_projection() {
        // [R1: {[A:X,B:Y]}, R2: {[C:Y,D:Z]}] — per the paper's prose: R1
        // projected on A,B and R2 projected on C,D such that each kept
        // B-value has a matching C-value (and vice versa).
        let db = sample_db();
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y()), d: (z())]}]);
        let e = interpret(&f, &db, MatchPolicy::Strict);
        assert_eq!(
            e,
            obj!([
                r1: {[a: 1, b: 10], [a: 2, b: 20]},
                r2: {[c: 10, d: 100], [c: 20, d: 200]}
            ])
        );
    }

    #[test]
    fn example_4_1_4_intersection() {
        // [R1: {X}, R2: {X}] — intersection of R1 and R2.
        let db = obj!([r1: {1, 2, 3}, r2: {2, 3, 4}]);
        let f = wff!([r1: {(x())}, r2: {(x())}]);
        let e = interpret(&f, &db, MatchPolicy::Strict);
        assert_eq!(e, obj!([r1: {2, 3}, r2: {2, 3}]));
    }

    #[test]
    fn example_4_1_6_whole_relations() {
        // [R1: X, R2: Y] — "relations R1 and R2".
        let db = sample_db();
        let f = wff!([r1: (x()), r2: (y())]);
        let e = interpret(&f, &db, MatchPolicy::Strict);
        assert_eq!(e, db);
    }

    #[test]
    fn example_4_1_7_element_unions() {
        // [R1: {X}, R2: {Y}] — also "relations R1 and R2": the union over
        // all element pairs rebuilds both sets.
        let db = sample_db();
        let f = wff!([r1: {(x())}, r2: {(y())}]);
        let e = interpret(&f, &db, MatchPolicy::Strict);
        assert_eq!(e, db);
    }

    #[test]
    fn literal_policy_keeps_unmatched_projections() {
        // With Literal, a non-joining R1 tuple still contributes its
        // A-projection (Y ↦ ⊥ erases the B attribute) — the discrepancy
        // documented in DESIGN.md §3.3.
        let db = obj!([r1: {[a: 1, b: 10], [a: 7, b: 77]}, r2: {[c: 10, d: 100]}]);
        let f = wff!([r1: {[a: (x()), b: (y())]}, r2: {[c: (y()), d: (z())]}]);
        let strict = interpret(&f, &db, MatchPolicy::Strict);
        assert_eq!(strict, obj!([r1: {[a: 1, b: 10]}, r2: {[c: 10, d: 100]}]));
        let literal = interpret(&f, &db, MatchPolicy::Literal);
        // [a: 7] survives in r1; the bare [d: 100] projection in r2 is
        // absorbed by [c: 10, d: 100] under set reduction.
        assert_eq!(
            literal,
            obj!([r1: {[a: 1, b: 10], [a: 7]}, r2: {[c: 10, d: 100]}])
        );
    }

    #[test]
    fn certificates_pair_substitutions_with_instantiations() {
        let db = obj!([r1: {1, 2}]);
        let f = wff!([r1: {(x())}]);
        let certs = certificates(&f, &db, MatchPolicy::Strict);
        assert_eq!(certs.len(), 2);
        for (s, inst) in &certs {
            assert_eq!(&f.instantiate(s), inst);
            assert!(le(inst, &db));
        }
    }

    #[test]
    fn ground_formula_interprets_to_itself_or_bottom() {
        let db = obj!([r1: {1, 2}]);
        assert_eq!(
            interpret(&wff!([r1: {1}]), &db, MatchPolicy::Strict),
            obj!([r1: {1}])
        );
        assert_eq!(
            interpret(&wff!([r1: {5}]), &db, MatchPolicy::Strict),
            Object::Bottom
        );
    }
}

//! Rules and programs (paper Definition 4.3).
//!
//! A rule is a pair `(φ :- φ')` of well-formed formulae where the variables
//! of the head `φ` are a subset of the variables of the body `φ'`. A *fact*
//! is a rule whose body is the ⊥ formula (always satisfied — see DESIGN.md
//! §3.5); the parser writes facts as a bare `head.`.

use crate::{CalculusError, Formula, Var};
use std::fmt;

/// A rule `head :- body` (Definition 4.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    head: Formula,
    body: Formula,
}

impl Rule {
    /// Builds a rule, checking the safety condition of Definition 4.3:
    /// every head variable must occur in the body.
    pub fn new(head: Formula, body: Formula) -> Result<Rule, CalculusError> {
        let body_vars = body.variables();
        for v in head.variables() {
            if !body_vars.contains(&v) {
                return Err(CalculusError::HeadVariableNotInBody(v));
            }
        }
        Ok(Rule { head, body })
    }

    /// Builds a fact: a rule with body ⊥, which fires unconditionally.
    /// The head must be ground.
    pub fn fact(head: Formula) -> Result<Rule, CalculusError> {
        Rule::new(head, Formula::Bottom)
    }

    /// The rule head.
    pub fn head(&self) -> &Formula {
        &self.head
    }

    /// The rule body.
    pub fn body(&self) -> &Formula {
        &self.body
    }

    /// True when the body is ⊥ (a fact).
    pub fn is_fact(&self) -> bool {
        self.body == Formula::Bottom
    }

    /// The variables of the body (a superset of the head's).
    pub fn variables(&self) -> Vec<Var> {
        self.body.variables()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fact() {
            write!(f, "{}.", self.head)
        } else {
            write!(f, "{} :- {}.", self.head, self.body)
        }
    }
}

/// A set of rules evaluated together (the `R` of Definitions 4.5/4.6).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    rules: Vec<Rule>,
}

impl Program {
    /// The empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Builds a program from rules.
    pub fn from_rules<I>(rules: I) -> Program
    where
        I: IntoIterator<Item = Rule>,
    {
        Program {
            rules: rules.into_iter().collect(),
        }
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The rules, in declaration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// True when any rule is recursive in the syntactic sense that a
    /// tuple attribute mentioned in its head also appears in some rule
    /// body of the program. A cheap, conservative signal used by callers
    /// to decide whether fixpoint iteration may take more than one step.
    pub fn looks_recursive(&self) -> bool {
        fn top_attrs(f: &Formula, out: &mut Vec<co_object::Attr>) {
            if let Formula::Tuple(entries) = f {
                for (a, _) in entries {
                    if !out.contains(a) {
                        out.push(*a);
                    }
                }
            }
        }
        let mut head_attrs = Vec::new();
        let mut body_attrs = Vec::new();
        for r in &self.rules {
            top_attrs(r.head(), &mut head_attrs);
            top_attrs(r.body(), &mut body_attrs);
        }
        head_attrs.iter().any(|a| body_attrs.contains(a))
    }
}

impl FromIterator<Rule> for Program {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        Program::from_rules(iter)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wff;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    #[test]
    fn safety_condition_enforced() {
        // Head variable Y not in body: rejected.
        let bad = Rule::new(wff!([r: {(y())}]), wff!([r1: {(x())}]));
        assert!(matches!(bad, Err(CalculusError::HeadVariableNotInBody(v)) if v == y()));
        // Subset is fine (head may use fewer variables).
        let ok = Rule::new(wff!([r: {(x())}]), wff!([r1: {(x()), (y())}]));
        assert!(ok.is_ok());
    }

    #[test]
    fn facts_fire_unconditionally() {
        let f = Rule::fact(wff!([doa: {abraham}])).unwrap();
        assert!(f.is_fact());
        assert_eq!(f.to_string(), "[doa: {abraham}].");
    }

    #[test]
    fn fact_with_variables_is_rejected() {
        assert!(Rule::fact(wff!([doa: {(x())}])).is_err());
    }

    #[test]
    fn display_rule() {
        let r = Rule::new(wff!([r: {(x())}]), wff!([r1: {(x())}])).unwrap();
        assert_eq!(r.to_string(), "[r: {X}] :- [r1: {X}].");
    }

    #[test]
    fn program_collects_rules() {
        let p: Program = [
            Rule::fact(wff!([doa: {abraham}])).unwrap(),
            Rule::new(wff!([doa: {(x())}]), wff!([doa: {(x())}])).unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(p.looks_recursive());
    }

    #[test]
    fn non_recursive_program_detected() {
        let p =
            Program::from_rules([Rule::new(wff!([out: {(x())}]), wff!([src: {(x())}])).unwrap()]);
        assert!(!p.looks_recursive());
    }
}

//! # co-calculus — the object calculus
//!
//! This crate implements Section 4 of Bancilhon & Khoshafian, *A Calculus
//! for Complex Objects* — the paper's primary contribution:
//!
//! - [`Formula`] — well-formed formulae (Definition 4.1): object syntax
//!   plus variables (and a ⊥ formula so facts are representable);
//! - [`Substitution`] — maps from variables to complex objects;
//! - [`matcher`] — enumeration of the substitutions `σ` with `σE ≤ O`,
//!   with maximal bindings computed as lattice glbs, under two policies
//!   ([`MatchPolicy::Strict`] / [`MatchPolicy::Literal`], see DESIGN.md);
//! - [`interpret`] — `E(O) = ∪ {σE : σE ≤ O}` (Definition 4.2);
//! - [`Rule`]/[`Program`] and [`apply_rule`]/[`apply_program`] —
//!   Definitions 4.3/4.4;
//! - [`closure`] — Definitions 4.5/4.6 and Theorem 4.1, as a reference
//!   naive-iteration implementation with divergence guards (the production
//!   engine lives in `co-engine`).
//!
//! ## Example: the paper's join rule
//!
//! ```
//! use co_calculus::{apply_rule, wff, MatchPolicy, Rule, Var};
//! use co_object::obj;
//!
//! let (x, y, z) = (Var::new("X"), Var::new("Y"), Var::new("Z"));
//! // Example 4.2(3): join R1 and R2 on B = C, project to A and D.
//! let rule = Rule::new(
//!     wff!([r: {[a: (x), d: (z)]}]),
//!     wff!([r1: {[a: (x), b: (y)]}, r2: {[c: (y), d: (z)]}]),
//! )
//! .unwrap();
//! let db = obj!([
//!     r1: {[a: 1, b: 10], [a: 2, b: 20]},
//!     r2: {[c: 10, d: 100], [c: 30, d: 300]}
//! ]);
//! assert_eq!(
//!     apply_rule(&rule, &db, MatchPolicy::Strict),
//!     obj!([r: {[a: 1, d: 100]}])
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod apply;
mod closure;
mod error;
pub mod formula;
pub mod interp;
pub mod matcher;
mod rule;
mod subst;
mod var;

pub use analysis::{analyse, Analysis};
pub use apply::{
    apply_program, apply_program_with, apply_rule, apply_rule_with, derivations, is_closed_under,
    is_closed_under_rule,
};
pub use closure::{closure, Closure, ClosureLimits, ClosureMode};
pub use error::CalculusError;
pub use formula::{Formula, IntoFormula};
pub use interp::{certificates, interpret, interpret_with};
pub use matcher::{match_with, matches, MatchPolicy, MatchStats, Prefilter, ScanAll};
pub use rule::{Program, Rule};
pub use subst::Substitution;
pub use var::Var;

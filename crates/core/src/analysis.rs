//! Static analysis of rule programs.
//!
//! The paper observes (after Theorem 4.1) that "in some cases such a
//! minimal fixpoint exists; in some others it does not (in which case the
//! series converges toward an infinite object)" — but offers no criterion.
//! This module provides the conservative syntactic analyses a practical
//! engine wants before running a program:
//!
//! - a **dependency graph** between rules over top-level attributes
//!   ("predicates" in Datalog terms), with recursion detection;
//! - a **divergence-risk** check: a recursive rule whose head embeds a
//!   recursion-carrying variable *strictly deeper* than the body reads it
//!   (Example 4.6's `[list: {[head: 1, tail: X]}] :- [list: {X}]` grows the
//!   term at every step). Programs free of such growth cannot build
//!   unboundedly deep objects and — over a fixed atom universe — terminate.
//!
//! Both analyses are conservative: `diverging` risk does not prove
//! divergence, and its absence does not bound *width* growth, only depth.

use crate::{Formula, Program, Var};
use co_object::Attr;
use rustc_hash::{FxHashMap, FxHashSet};

/// The variable occurrence depth profile of a formula: for each variable,
/// the minimum constructor depth at which it occurs.
fn var_depths(f: &Formula, depth: usize, out: &mut FxHashMap<Var, usize>) {
    match f {
        Formula::Bottom | Formula::Atom(_) => {}
        Formula::Var(v) => {
            let d = out.entry(*v).or_insert(depth);
            *d = (*d).min(depth);
        }
        Formula::Tuple(entries) => {
            for (_, w) in entries {
                var_depths(w, depth + 1, out);
            }
        }
        Formula::Set(members) => {
            for w in members {
                var_depths(w, depth + 1, out);
            }
        }
    }
}

/// Top-level attributes a formula touches (the "predicates" it reads or
/// writes). A bare set/variable formula touches the anonymous root, which
/// we model as `None`.
fn top_attrs(f: &Formula) -> Vec<Option<Attr>> {
    match f {
        Formula::Tuple(entries) => entries.iter().map(|(a, _)| Some(*a)).collect(),
        Formula::Bottom | Formula::Atom(_) => Vec::new(),
        _ => vec![None],
    }
}

/// The result of analysing a program.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// For each rule index: the rule indices it depends on (reads what
    /// they write).
    pub dependencies: Vec<Vec<usize>>,
    /// Rule indices that participate in a dependency cycle (including
    /// self-recursion).
    pub recursive_rules: Vec<usize>,
    /// Rule indices flagged as divergence risks: recursive and growing
    /// (see [`rule_grows`]).
    pub divergence_risks: Vec<usize>,
}

impl Analysis {
    /// True when no rule is recursive: the fixpoint closes in at most
    /// `|rules| + 1` iterations.
    pub fn is_nonrecursive(&self) -> bool {
        self.recursive_rules.is_empty()
    }

    /// True when no recursive rule grows its recursion variables: the
    /// closure cannot build unboundedly *deep* objects.
    pub fn is_depth_bounded(&self) -> bool {
        self.divergence_risks.is_empty()
    }
}

/// Does `rule` embed any body variable strictly deeper in its head than
/// the (deepest) body occurrence that binds it? Such rules can pump
/// structure — the Example 4.6 signature.
pub fn rule_grows(rule: &crate::Rule) -> bool {
    let mut body_depths = FxHashMap::default();
    var_depths(rule.body(), 0, &mut body_depths);
    let mut head_depths = FxHashMap::default();
    var_depths(rule.head(), 0, &mut head_depths);
    head_depths.iter().any(|(v, head_d)| {
        body_depths
            .get(v)
            .map(|body_d| head_d > body_d)
            .unwrap_or(false)
    })
}

/// Analyses `program`: dependency graph, recursion, divergence risks.
pub fn analyse(program: &Program) -> Analysis {
    let rules = program.rules();
    let n = rules.len();
    let writes: Vec<FxHashSet<Option<Attr>>> = rules
        .iter()
        .map(|r| top_attrs(r.head()).into_iter().collect())
        .collect();
    let reads: Vec<FxHashSet<Option<Attr>>> = rules
        .iter()
        .map(|r| top_attrs(r.body()).into_iter().collect())
        .collect();

    let mut dependencies: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for (j, w) in writes.iter().enumerate() {
            // Rule i depends on rule j when i reads something j writes.
            // `None` (anonymous root output) conservatively collides with
            // everything.
            let collide = reads[i]
                .iter()
                .any(|r| r.is_none() || w.contains(r) || w.contains(&None));
            if collide && !reads[i].is_empty() {
                dependencies[i].push(j);
            }
        }
    }

    // A rule is recursive when it can reach itself in the dependency graph.
    let mut recursive_rules = Vec::new();
    for start in 0..n {
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = dependencies[start].clone();
        let mut reachable_self = false;
        while let Some(x) = stack.pop() {
            if x == start {
                reachable_self = true;
                break;
            }
            if !seen[x] {
                seen[x] = true;
                stack.extend(dependencies[x].iter().copied());
            }
        }
        if reachable_self {
            recursive_rules.push(start);
        }
    }

    let divergence_risks = recursive_rules
        .iter()
        .copied()
        .filter(|&i| rule_grows(&rules[i]))
        .collect();

    Analysis {
        dependencies,
        recursive_rules,
        divergence_risks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{wff, Rule};

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    fn descendants() -> Program {
        Program::from_rules([
            Rule::fact(wff!([doa: {abraham}])).unwrap(),
            Rule::new(
                wff!([doa: {(x())}]),
                wff!([family: {[name: (y()), children: {[name: (x())]}]}, doa: {(y())}]),
            )
            .unwrap(),
        ])
    }

    fn infinite_lists() -> Program {
        Program::from_rules([
            Rule::fact(wff!([list: {1}])).unwrap(),
            Rule::new(
                wff!([list: {[head: 1, tail: (x())]}]),
                wff!([list: {(x())}]),
            )
            .unwrap(),
        ])
    }

    #[test]
    fn nonrecursive_program() {
        let p =
            Program::from_rules([Rule::new(wff!([out: {(x())}]), wff!([src: {(x())}])).unwrap()]);
        let a = analyse(&p);
        assert!(a.is_nonrecursive());
        assert!(a.is_depth_bounded());
        assert!(a.dependencies[0].is_empty());
    }

    #[test]
    fn descendants_is_recursive_but_depth_bounded() {
        let a = analyse(&descendants());
        assert_eq!(a.recursive_rules, vec![1]);
        assert!(!a.is_nonrecursive());
        // X occurs at depth 3 in the body, depth 2 in the head: the head
        // does NOT deepen it — no divergence risk.
        assert!(a.is_depth_bounded());
    }

    #[test]
    fn example_4_6_is_flagged_as_divergence_risk() {
        let a = analyse(&infinite_lists());
        assert_eq!(a.recursive_rules, vec![1]);
        assert_eq!(a.divergence_risks, vec![1]);
        assert!(!a.is_depth_bounded());
    }

    #[test]
    fn rule_growth_detection() {
        // Head puts X one level deeper than the body reads it.
        let grows = Rule::new(wff!([r: {{(x())}}]), wff!([r: {(x())}])).unwrap();
        assert!(rule_grows(&grows));
        // Same depth: no growth.
        let level = Rule::new(wff!([r: {(x())}]), wff!([s: {(x())}])).unwrap();
        assert!(!rule_grows(&level));
        // Head SHALLOWER than body: projection, no growth.
        let shrinks = Rule::new(wff!({ (x()) }), wff!([r: {[a: (x())]}])).unwrap();
        assert!(!rule_grows(&shrinks));
    }

    #[test]
    fn mutual_recursion_detected() {
        let p = Program::from_rules([
            Rule::new(wff!([p: {(x())}]), wff!([q: {(x())}])).unwrap(),
            Rule::new(wff!([q: {(x())}]), wff!([p: {(x())}])).unwrap(),
        ]);
        let a = analyse(&p);
        assert_eq!(a.recursive_rules, vec![0, 1]);
        assert!(a.is_depth_bounded());
    }

    #[test]
    fn facts_do_not_create_dependencies() {
        let a = analyse(&descendants());
        assert!(a.dependencies[0].is_empty()); // the fact reads nothing
        assert!(a.dependencies[1].contains(&0)); // the rule reads doa
        assert!(a.dependencies[1].contains(&1));
    }

    #[test]
    fn bare_set_heads_collide_conservatively() {
        // {X} :- [r: {X}] writes the anonymous root: everything reading
        // anything depends on it.
        let p = Program::from_rules([
            Rule::new(wff!({ (x()) }), wff!([r: {(x())}])).unwrap(),
            Rule::new(wff!([s: {(x())}]), wff!([t: {(x())}])).unwrap(),
        ]);
        let a = analyse(&p);
        assert!(a.dependencies[1].contains(&0));
    }
}

//! Offline shim for the `criterion` crate.
//!
//! Provides the macro/API surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`) with
//! a simple wall-clock measurement loop: warm up briefly, then time batches
//! until a time budget is spent, and print the mean time per iteration.
//! No statistical analysis, plots, or baselines — numbers are indicative,
//! which is all an offline smoke run needs.
//!
//! # Machine-readable results
//!
//! Passing `--save-json <path>` to a bench binary (i.e. `cargo bench --
//! --save-json BENCH.json`), or setting `CRITERION_SAVE_JSON=<path>`,
//! makes every measurement also append a record to `<path>`, which is
//! maintained as a valid JSON array across bench binaries and runs (each
//! append rewrites only the closing bracket). Benches can add custom
//! records — derived rates, counters — with [`save_json_record`]. Every
//! record is stamped with the machine context (core count and active
//! `CO_*` environment knobs, see [`machine_context_json`]) so saved
//! numbers stay interpretable after the run.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The JSON results path configured for this process: the argument after
/// `--save-json` on the command line, else the `CRITERION_SAVE_JSON`
/// environment variable, else `None`.
///
/// **Relative paths resolve against the workspace root** (the nearest
/// ancestor of the current directory containing a `Cargo.lock`), not the
/// process CWD: cargo runs bench binaries with the *package* directory as
/// CWD, so `cargo bench -- --save-json BENCH.json` would otherwise
/// scatter results under `crates/bench/` — a footgun nobody wants.
/// Absolute paths are used as given.
pub fn json_output_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    let raw = loop {
        match args.next() {
            Some(a) if a == "--save-json" => {
                if let Some(p) = args.next() {
                    break PathBuf::from(p);
                }
            }
            Some(_) => continue,
            None => break std::env::var_os("CRITERION_SAVE_JSON").map(PathBuf::from)?,
        }
    };
    if raw.is_absolute() {
        return Some(raw);
    }
    Some(workspace_root().join(raw))
}

/// The nearest ancestor of the current directory containing a
/// `Cargo.lock` — the workspace root under `cargo bench`/`cargo test` —
/// falling back to the current directory when none is found.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

/// The machine context stamped into every saved record: the logical
/// core count ([`std::thread::available_parallelism`], 0 when unknown)
/// and the active `CO_*` environment knobs, sorted by name — so a
/// BENCH_*.json number can always be traced back to the parallelism and
/// store configuration that produced it.
pub fn machine_context_json() -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut knobs: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("CO_"))
        .collect();
    knobs.sort();
    let env = knobs
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
        .collect::<Vec<_>>()
        .join(", ");
    format!("\"cores\": {cores}, \"co_env\": {{{env}}}")
}

/// Appends one JSON object (`record` must be a serialized `{…}`) to the
/// configured results file, keeping the file a valid JSON array. The
/// [`machine_context_json`] fields are spliced into every record before
/// its closing brace. No-op when no path is configured. Errors are
/// reported to stderr, never fatal: losing a record must not fail a
/// bench run.
pub fn save_json_record(record: &str) {
    let Some(path) = json_output_path() else {
        return;
    };
    let record = match record.trim_end().strip_suffix('}') {
        Some(body) if body.trim_start().starts_with('{') => {
            let sep = if body.trim_end().ends_with('{') {
                ""
            } else {
                ", "
            };
            format!("{body}{sep}{}}}", machine_context_json())
        }
        _ => record.to_string(),
    };
    let record = record.as_str();
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let trimmed = existing.trim_end();
    let content = match trimmed.strip_suffix(']') {
        // Append inside the existing array.
        Some(body) => {
            let body = body.trim_end();
            if body.ends_with('[') {
                format!("{body}\n  {record}\n]\n")
            } else {
                format!("{body},\n  {record}\n]\n")
            }
        }
        // Fresh (or foreign) file: start a new array.
        None => format!("[\n  {record}\n]\n"),
    };
    if let Err(e) = std::fs::write(&path, content) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

/// Minimal JSON string escaping for benchmark ids.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Re-export of [`std::hint::black_box`] (criterion-compatible).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: a function label plus a
/// parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id `label/parameter`.
    pub fn new(label: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{label}/{parameter}"),
        }
    }

    /// A benchmark id rendering only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput annotation (accepted and echoed; no derived rates).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The measurement handle passed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (page in code/data, build lazy caches).
        std_black_box(f());
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 16);
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (accepted for API compatibility; the
    /// shim's time budget is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            budget: self.criterion.budget,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Benches `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            budget: self.criterion.budget,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = Duration::from_nanos(b.ns_per_iter as u64);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                let mbps = n as f64 / b.ns_per_iter * 1e9 / (1024.0 * 1024.0);
                format!("  ({mbps:.1} MiB/s)")
            }
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                let eps = n as f64 / b.ns_per_iter * 1e9;
                format!("  ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {per_iter:?}/iter over {} iters{rate}",
            self.name, b.iters
        );
        save_json_record(&format!(
            "{{\"bench\": \"{}\", \"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
            json_escape(&self.name),
            json_escape(id),
            b.ns_per_iter,
            b.iters,
        ));
    }

    /// Finishes the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Overridable so CI smoke runs can keep bench jobs fast.
        let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that mutate the process-wide
    /// `CRITERION_SAVE_JSON` environment variable.
    static ENV_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn relative_json_paths_resolve_to_the_workspace_root() {
        let _gate = ENV_GATE.lock().unwrap();
        std::env::set_var("CRITERION_SAVE_JSON", "REL_BENCH_TEST.json");
        let p = json_output_path().unwrap();
        std::env::remove_var("CRITERION_SAVE_JSON");
        assert!(p.is_absolute(), "resolved: {}", p.display());
        assert!(p.ends_with("REL_BENCH_TEST.json"));
        // The anchor is the workspace root: the directory with Cargo.lock.
        assert!(
            p.parent().unwrap().join("Cargo.lock").is_file(),
            "not anchored at the workspace root: {}",
            p.display()
        );
    }

    #[test]
    fn absolute_json_paths_pass_through() {
        let _gate = ENV_GATE.lock().unwrap();
        let abs = std::env::temp_dir().join("criterion_abs.json");
        std::env::set_var("CRITERION_SAVE_JSON", &abs);
        let p = json_output_path().unwrap();
        std::env::remove_var("CRITERION_SAVE_JSON");
        assert_eq!(p, abs);
    }

    #[test]
    fn json_append_keeps_a_valid_array() {
        let _gate = ENV_GATE.lock().unwrap();
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_json_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_SAVE_JSON", &path);
        save_json_record("{\"bench\": \"a\", \"ns_per_iter\": 1.5}");
        save_json_record("{\"bench\": \"b\", \"ns_per_iter\": 2.0}");
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::remove_var("CRITERION_SAVE_JSON");
        let _ = std::fs::remove_file(&path);
        assert!(text.starts_with("[\n"), "not an array: {text}");
        assert!(text.trim_end().ends_with(']'), "unterminated: {text}");
        assert!(text.contains("\"bench\": \"a\""));
        assert!(text.contains("\"bench\": \"b\""));
        assert_eq!(text.matches('[').count(), 1);
        assert!(text.contains("},\n"), "records must be comma-separated");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn every_record_carries_the_machine_context() {
        let _gate = ENV_GATE.lock().unwrap();
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_context_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_SAVE_JSON", &path);
        std::env::set_var("CO_SHIM_CONTEXT_PROBE", "17");
        save_json_record("{\"bench\": \"ctx\", \"ns_per_iter\": 1.0}");
        save_json_record("{}");
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::remove_var("CO_SHIM_CONTEXT_PROBE");
        std::env::remove_var("CRITERION_SAVE_JSON");
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            text.matches("\"cores\": ").count(),
            2,
            "both records must be stamped: {text}"
        );
        assert!(
            text.contains("\"co_env\": {") && text.contains("\"CO_SHIM_CONTEXT_PROBE\": \"17\""),
            "CO_* knobs must be recorded: {text}"
        );
        let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
        assert!(text.contains(&format!("\"cores\": {cores}")));
        // The splice must keep each record a syntactically closed
        // object: the co_env object plus the record's own brace.
        assert!(text.contains("}},\n"), "record not re-closed: {text}");
    }

    #[test]
    fn bench_loop_measures_something() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }
}

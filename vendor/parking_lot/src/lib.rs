//! Offline shim for the `parking_lot` crate: the non-poisoning `RwLock` /
//! `Mutex` API backed by `std::sync`. Poisoned locks are recovered
//! transparently (`parking_lot` has no poisoning), which is the only
//! behavioural difference callers could observe.

use std::sync;

/// Shared read guard for [`RwLock`] (the std guard — this shim has no
/// custom guard types).
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard (never poisons).
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard (never poisons).
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read guard without blocking. Returns
    /// `None` when the lock is currently held exclusively (never poisons).
    pub fn try_read(&self) -> Option<sync::RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    /// Returns `None` when the lock is held by any other guard (never
    /// poisons).
    pub fn try_write(&self) -> Option<sync::RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock (never poisons).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking. Returns `None` when
    /// the mutex is held by another guard (never poisons).
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(5);
        {
            let r = l.try_read().expect("uncontended read");
            assert_eq!(*r, 5);
            // A second reader coexists; a writer does not.
            assert!(l.try_read().is_some());
            assert!(l.try_write().is_none());
        }
        {
            let mut w = l.try_write().expect("uncontended write");
            *w += 1;
            assert!(l.try_read().is_none());
            assert!(l.try_write().is_none());
        }
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn mutex_try_lock() {
        let m = Mutex::new(7);
        {
            let g = m.try_lock().expect("uncontended");
            assert_eq!(*g, 7);
            assert!(m.try_lock().is_none());
        }
        assert!(m.try_lock().is_some());
    }
}

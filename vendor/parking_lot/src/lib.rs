//! Offline shim for the `parking_lot` crate: the non-poisoning `RwLock` /
//! `Mutex` API backed by `std::sync`. Poisoned locks are recovered
//! transparently (`parking_lot` has no poisoning), which is the only
//! behavioural difference callers could observe.

use std::sync;

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard (never poisons).
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard (never poisons).
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with `parking_lot`'s non-poisoning API.
#[derive(Default, Debug)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock (never poisons).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}

//! Offline shim: readiness notification for the serving layer, built on
//! nothing but `poll(2)` and `pipe(2)`.
//!
//! The serving layer's reactor needs exactly three primitives: wait for
//! readability/writability on a set of fds ([`poll`]), wait on a single
//! fd with a timeout ([`wait`]), and a way for another thread to wake a
//! parked reactor ([`Waker`], the classic self-pipe trick). None of that
//! needs an async runtime or the `libc` crate — the symbols are declared
//! by hand against the C library the Rust standard library already links
//! — so this shim stays a few hundred lines of `extern "C"` and keeps the
//! workspace fully offline. Unix-only, like the sockets it watches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io;
use std::os::raw::{c_int, c_short, c_ulong, c_void};
use std::os::unix::io::RawFd;

/// The fd is readable (or a peer hung up with data still buffered).
pub const POLLIN: i16 = 0x001;
/// The fd is writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (always polled, never requested).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// `struct pollfd` exactly as `poll(2)` wants it.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct RawPollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

extern "C" {
    fn poll(fds: *mut RawPollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

/// One entry in a [`poll`] set: an fd, the events of interest, and — after
/// the call — the events that fired.
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    raw: RawPollFd,
}

impl PollFd {
    /// Watches `fd` for `events` (`POLLIN` and/or `POLLOUT`).
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            raw: RawPollFd {
                fd,
                events: events as c_short,
                revents: 0,
            },
        }
    }

    /// The fd this entry watches.
    pub fn fd(&self) -> RawFd {
        self.raw.fd
    }

    /// The events that fired in the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.raw.revents
    }

    /// Did readability (or a hangup, which a read will surface as EOF)
    /// fire?
    pub fn readable(&self) -> bool {
        self.revents() & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Did writability fire?
    pub fn writable(&self) -> bool {
        self.revents() & (POLLOUT | POLLERR) != 0
    }

    /// Did the kernel flag the entry as errored, hung up, or invalid?
    pub fn failed(&self) -> bool {
        self.revents() & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Waits for readiness on `fds`, blocking at most `timeout_ms`
/// milliseconds (`-1` = forever, `0` = just check). Returns how many
/// entries have nonzero `revents`. `EINTR` is retried internally — a
/// stray signal never surfaces as an error.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: PollFd is repr-compatible with struct pollfd (the one
        // repr(C) field), and the slice's length is passed alongside it.
        let rc = unsafe {
            poll(
                fds.as_mut_ptr().cast::<RawPollFd>(),
                fds.len() as c_ulong,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// Waits for `events` on a single `fd`, at most `timeout_ms` ms. Returns
/// `true` if the fd became ready (for any reason, including error/hangup
/// — the following read/write will surface the failure as `io::Error`),
/// `false` on timeout.
pub fn wait(fd: RawFd, events: i16, timeout_ms: i32) -> io::Result<bool> {
    let mut set = [PollFd::new(fd, events)];
    Ok(poll_fds(&mut set, timeout_ms)? > 0)
}

/// The self-pipe trick: a nonblocking pipe whose read end sits in the
/// reactor's poll set and whose write end any thread can nudge to wake a
/// parked [`poll_fds`] call. Writes when the pipe is already full are
/// fine — the reactor is provably waking anyway.
#[derive(Debug)]
pub struct Waker {
    read_fd: c_int,
    write_fd: c_int,
}

// The fds are plain integers used through atomic syscalls.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates the pipe pair, both ends nonblocking.
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: pipe writes exactly two fds into the array.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        for fd in fds {
            // SAFETY: plain fcntl on fds this function just created.
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(waker)
    }

    /// The fd to include (with [`POLLIN`]) in the reactor's poll set.
    pub fn poll_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the reactor. Best-effort and non-blocking: a full pipe means
    /// wakeups are already pending, which is all a wake needs.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one-byte write to a pipe fd this Waker owns.
        unsafe {
            let _ = write(self.write_fd, (&byte as *const u8).cast::<c_void>(), 1);
        }
    }

    /// Drains every pending wake byte (call once per reactor iteration
    /// when the read end polls readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: bounded read into a local buffer from an owned fd.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing fds this Waker owns exactly once.
        unsafe {
            let _ = close(self.read_fd);
            let _ = close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_wakes_a_parked_poll_and_drains() {
        let waker = Waker::new().unwrap();
        // Nothing pending: a zero-timeout poll sees no readiness.
        let mut set = [PollFd::new(waker.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0);

        // A wake from another thread unparks a blocking poll promptly.
        let fd = waker.poll_fd();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                waker.wake();
            });
            let t = Instant::now();
            assert!(wait(fd, POLLIN, 5_000).unwrap(), "wake must unpark");
            assert!(t.elapsed() < Duration::from_secs(4), "woke, not timed out");
        });

        // Drained, the pipe polls idle again; repeated wakes never block.
        waker.drain();
        assert_eq!(poll_fds(&mut set, 0).unwrap(), 0);
        for _ in 0..10_000 {
            waker.wake();
        }
        waker.drain();
    }

    #[test]
    fn wait_times_out_when_nothing_fires() {
        let waker = Waker::new().unwrap();
        let t = Instant::now();
        assert!(!wait(waker.poll_fd(), POLLIN, 30).unwrap());
        assert!(t.elapsed() >= Duration::from_millis(25));
    }
}

//! Offline shim for the `smallvec` crate: the same `SmallVec<[T; N]>` API
//! surface backed by a plain `Vec<T>`. The inline-storage optimization is
//! dropped (heap allocation instead), but semantics are identical, so code
//! written against `smallvec` compiles and behaves the same.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Types usable as the backing-array parameter of [`SmallVec`].
pub trait Array {
    /// The element type.
    type Item;
    /// The inline capacity (unused by this shim).
    fn size() -> usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    fn size() -> usize {
        N
    }
}

/// A growable vector with the `smallvec::SmallVec` API, backed by `Vec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// Creates an empty vector with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends an element.
    pub fn push(&mut self, item: A::Item) {
        self.inner.push(item);
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Inserts `item` at `index`, shifting later elements right.
    pub fn insert(&mut self, index: usize, item: A::Item) {
        self.inner.insert(index, item);
    }

    /// Removes and returns the element at `index`.
    pub fn remove(&mut self, index: usize) -> A::Item {
        self.inner.remove(index)
    }

    /// Extracts a slice of the whole vector.
    pub fn as_slice(&self) -> &[A::Item] {
        &self.inner
    }

    /// Converts into a plain `Vec`.
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: Vec::from_iter(iter),
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Constructs a [`SmallVec`] from a list of elements, like `vec!`.
#[macro_export]
macro_rules! smallvec {
    ($($x:expr),* $(,)?) => {
        $crate::SmallVec::from_iter([$($x),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_vec() {
        let mut v: SmallVec<[i32; 4]> = SmallVec::new();
        v.push(3);
        v.insert(0, 1);
        assert_eq!(v.as_slice(), &[1, 3]);
        assert_eq!(v.binary_search(&3), Ok(1));
        let w: SmallVec<[i32; 4]> = SmallVec::from_iter([1, 3]);
        assert_eq!(v, w);
    }
}

//! Offline shim for the `threadpool` crate: a minimal fixed-size worker
//! pool backed by `std::thread` and `std::sync::mpsc`.
//!
//! Workers are spawned once at construction and pull boxed jobs from a
//! shared channel, so per-job dispatch cost is a heap allocation plus a
//! channel round-trip — cheap enough to fan out work every fixpoint round
//! rather than re-spawning OS threads. Dropping the pool closes the channel
//! and joins every worker (each worker finishes the job it is running).
//!
//! The API is the familiar subset of the real `threadpool` crate
//! (`new` / `execute` / `max_count`, plus `join` via `Drop`); swapping in
//! the registry crate is a one-line change in the workspace manifest.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs in FIFO order
/// of submission (each job runs on whichever worker frees up first).
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> ThreadPool {
        assert!(threads > 0, "a thread pool needs at least one worker");
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to receive; run the job outside
                        // it so workers execute concurrently.
                        let job = {
                            let guard = receiver.lock().unwrap_or_else(|p| p.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // channel closed: pool dropped
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Submits a job for execution on some worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// The number of worker threads.
    pub fn max_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every idle worker's recv() fail; busy
        // workers finish their current job first.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.max_count(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins workers
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn results_can_be_collected_in_submission_order() {
        let pool = ThreadPool::new(3);
        let (tx, rx) = mpsc::channel();
        for i in 0..32usize {
            let tx = tx.clone();
            pool.execute(move || {
                tx.send((i, i * i)).unwrap();
            });
        }
        drop(tx);
        let mut results: Vec<(usize, usize)> = rx.iter().collect();
        results.sort_unstable();
        assert_eq!(results.len(), 32);
        for (i, sq) in results {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }
}

//! Offline shim for the `rand` crate covering the API surface this
//! workspace uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`RngExt`] with `random_range` / `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, high-quality for test/benchmark workloads, and **not**
//! cryptographically secure (neither is what callers here need).

use std::ops::{Range, RangeInclusive};

/// Core RNG trait: a source of uniformly distributed words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, mirroring `rand 0.9`'s `Rng` extension surface.
pub trait RngExt: RngCore {
    /// A uniformly random value in `range` (panics when empty).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample(self, lo, hi_inclusive)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniformly random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Re-export expected by `use rand::Rng`-style callers.
pub use RngExt as Rng;

/// Integer types samplable by [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from the inclusive range `[lo, hi]`.
    fn sample<G: RngCore + ?Sized>(g: &mut G, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait IntoUniformRange<T: SampleUniform> {
    /// The `(low, high_inclusive)` bounds; panics when the range is empty.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform + OneLess> IntoUniformRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(
            self.start < self.end,
            "random_range called with empty range"
        );
        (self.start, self.end.one_less())
    }
}

impl<T: SampleUniform> IntoUniformRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range called with empty range");
        (lo, hi)
    }
}

/// Decrement helper for converting exclusive upper bounds.
pub trait OneLess {
    /// `self - 1` (never called on a minimum value — the empty-range assert
    /// fires first).
    fn one_less(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl OneLess for $t {
            fn one_less(self) -> Self {
                self - 1
            }
        }

        impl SampleUniform for $t {
            fn sample<G: RngCore + ?Sized>(g: &mut G, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return g.next_u64() as $t;
                }
                // Debiased multiply-shift (Lemire): uniform in [0, span).
                let threshold = span.wrapping_neg() % span;
                loop {
                    let r = g.next_u64();
                    let m = (r as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        let offset = (m >> 64) as u64;
                        return ((lo as $wide).wrapping_add(offset as $wide)) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256++ (seeded via SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into four nonzero words.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = g.random_range(0..10i64);
            assert!((0..10).contains(&v));
            let w = g.random_range(3..=5usize);
            assert!((3..=5).contains(&w));
            let b = g.random_range(0..4u8);
            assert!(b < 4);
        }
        // All values of a small range appear.
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[g.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn negative_ranges_work() {
        let mut g = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = g.random_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn random_bool_probabilities() {
        let mut g = StdRng::seed_from_u64(1);
        assert!(!g.random_bool(0.0));
        assert!(g.random_bool(1.0));
        let hits = (0..10_000).filter(|_| g.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
    }
}

//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map`,
//! `any::<T>()`, integer ranges as strategies, [`prop_oneof!`],
//! [`collection::vec`], [`sample::subsequence`], and the `prop_assert*` /
//! `prop_assume!` macros —
//! with a **deterministic** runner: case `i` of a test is always generated
//! from the same internal seed, so failures reproduce without a persistence
//! file. There is no shrinking; a failing case panics with the generated
//! inputs' `Debug` representation via the assert message.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving value generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; the tiny modulo bias is irrelevant for test-case
        // generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value — the
    /// standard way to generate "a schema, and a relation over it".
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A boxed, type-erased strategy — what [`prop_oneof!`] unions over.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice among same-valued strategies (built by [`prop_oneof!`];
/// the real crate's per-arm weights are not supported).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "empty prop_oneof!");
        self.0[rng.below(self.0.len() as u64) as usize].generate(rng)
    }
}

/// Picks uniformly among the given strategies (all must generate the same
/// type). Weighted arms are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$(Box::new($strat) as $crate::BoxedStrategy<_>),+])
    };
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use std::ops::RangeInclusive;

    /// Picks a random subsequence of `items` (original order preserved)
    /// whose length is drawn from `size`, clamped to `items.len()`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: RangeInclusive<usize>) -> Subsequence<T> {
        Subsequence { items, size }
    }

    /// The [`subsequence`] strategy.
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: RangeInclusive<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let lo = (*self.size.start()).min(self.items.len());
            let hi = (*self.size.end()).min(self.items.len());
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            // Partial Fisher–Yates over the index set, then re-sort so the
            // picked items keep their original relative order.
            let mut indices: Vec<usize> = (0..self.items.len()).collect();
            for i in 0..len {
                let j = i + rng.below((indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices.truncate(len);
            indices.sort_unstable();
            indices.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

/// Strategy generating any value of `T` (for the types listed below).
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — proptest's canonical arbitrary-value strategy.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Mix finite values of moderate magnitude with raw bit patterns
        // (NaNs, infinities, subnormals) like proptest's arbitrary f64.
        match rng.below(4) {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64),
            2 => rng.next_u64() as i64 as f64,
            _ => {
                let mantissa = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let exp = rng.below(60) as i32 - 30;
                mantissa * (2f64).powi(exp)
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// String-pattern strategies: proptest interprets a `&str` as a regex to
/// generate from. The shim does not ship a regex engine; any pattern yields
/// arbitrary control-character-free unicode strings (a superset-in-spirit of
/// the `"\\PC*"` pattern, the only one this workspace uses), mixing ASCII,
/// quoting/escaping metacharacters, and non-ASCII scalars.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(40) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(5) {
                0 => char::from(b'a' + rng.below(26) as u8),
                1 => char::from(32 + rng.below(95) as u8), // printable ASCII
                2 => *['"', '\\', '\'', ' ', ':', ',', '{', '[', '.']
                    .get(rng.below(9) as usize)
                    .unwrap(),
                3 => char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('¡'),
                _ => {
                    // Arbitrary non-control scalar value.
                    loop {
                        let v = rng.below(0x11_0000) as u32;
                        if let Some(c) = char::from_u32(v) {
                            if !c.is_control() {
                                break c;
                            }
                        }
                    }
                }
            };
            s.push(c);
        }
        s
    }
}

/// A strategy always yielding clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Everything a proptest-style test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption does not hold. (The shim
/// counts skipped cases as passed rather than regenerating them.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The proptest test-definition macro: wraps each `fn name(arg in strategy)`
/// item in a deterministic multi-case runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case as u64);
                let ($($arg,)*) =
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)*);
                // Closure so `prop_assume!` can skip the case with `return`.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        any::<u64>().prop_map(|v| v & !1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 2i64..8, b in 0usize..12) {
            prop_assert!((2..8).contains(&a));
            prop_assert!(b < 12);
        }

        /// Mapped strategies apply their function.
        #[test]
        fn mapped_values(v in arb_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        /// Tuple strategies generate componentwise.
        #[test]
        fn tuples((seed, skip) in (any::<u64>(), 0usize..16)) {
            let _ = seed;
            prop_assert!(skip < 16);
        }

        /// Assumptions skip cases.
        #[test]
        fn assumptions(v in 0u64..10) {
            prop_assume!(v < 5);
            prop_assert!(v < 5);
        }

        /// `prop_oneof!` only yields values from its arms.
        #[test]
        fn oneof_arms(v in prop_oneof![Just(1u8), Just(4u8), 7u8..9]) {
            prop_assert!(matches!(v, 1u8 | 4 | 7 | 8));
        }

        /// `collection::vec` respects its length range.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0i64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }

        /// `subsequence` keeps order, uniqueness, and length bounds.
        #[test]
        fn subsequences(v in crate::sample::subsequence(vec![1, 2, 3, 4, 5], 1..=3)) {
            prop_assert!((1..=3).contains(&v.len()));
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        }

        /// `prop_flat_map` feeds the generated value to the next strategy.
        #[test]
        fn flat_mapped((n, v) in (1usize..5).prop_flat_map(
            |n| (Just(n), crate::collection::vec(any::<bool>(), n..n + 1)),
        )) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

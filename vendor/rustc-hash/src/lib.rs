//! Offline shim for the `rustc-hash` crate: the Fx multiply-rotate hash
//! (the same algorithm rustc uses) plus `HashMap`/`HashSet` aliases wired to
//! it. API-compatible with the subset this workspace uses.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// The `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// A fast, non-cryptographic hasher: multiply by a large odd constant and
/// rotate, folding each input word into the state.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"world"));
    }
}

//! The paper's §4 walkthrough, executable: all seven well-formed formulae
//! of Example 4.1 and all seven rules of Example 4.2, interpreted over a
//! sample database, next to the equivalent flat relational-algebra queries
//! — demonstrating that the calculus subsumes select/project/join/
//! intersect and showing the Literal-vs-Strict discrepancy explicitly.
//!
//! Run with `cargo run --example relational_algebra`.

use co_relational::{encode_database, int_relation, run_query_via_calculus, Query};
use complex_objects::prelude::*;

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    // The flat database used throughout.
    let mut rdb = co_relational::Database::new();
    rdb.insert("r1", int_relation(["a", "b"], [[1, 10], [2, 20], [3, 30]]));
    rdb.insert(
        "r2",
        int_relation(["c", "d"], [[10, 100], [20, 200], [99, 999]]),
    );
    let db = encode_database(&rdb);
    println!("database object:\n  {db}");

    section("Example 4.1 — interpretations of well-formed formulae");
    let formulas = [
        ("[r1: {[a: X, b: 10]}]", "selection of R1 on b = 10"),
        (
            "[r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]",
            "projections kept only where b matches some c",
        ),
        (
            "[r1: {[a: 1, b: Y]}, r2: {[c: Y, d: Z]}]",
            "the same, selected on a = 1",
        ),
        ("[r1: {X}, r2: {X}]", "intersection of R1 and R2"),
        (
            "[r1: {[a: X, b: Y]}, r2: {[c: X, d: Y]}]",
            "pairwise-equal projections (a=c, b=d)",
        ),
        ("[r1: X, r2: Y]", "relations R1 and R2"),
        ("[r1: {X}, r2: {Y}]", "relations R1 and R2 (element-wise)"),
    ];
    for (src, gloss) in formulas {
        let f = parse_formula(src).unwrap();
        println!(
            "  {src}\n    % {gloss}\n    = {}",
            interpret(&f, &db, MatchPolicy::Strict)
        );
    }

    section("Example 4.2 — rules, against the flat algebra");
    // (2) selection + projection, checked against σ/π.
    let r2 = parse_rule("[r: {X}] :- [r1: {[a: X, b: 10]}].").unwrap();
    let calculus = apply_rule(&r2, &db, MatchPolicy::Strict);
    let algebra = Query::rel("r1").select_eq("b", 10).project(["a"]);
    println!(
        "  rule (2): {}\n    calculus  = {}\n    algebra   = {:?} rows",
        r2,
        calculus,
        algebra.eval(&rdb).unwrap().len()
    );

    // (3) the join rule, checked against ⋈.
    let r3 =
        parse_rule("[r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].").unwrap();
    let join_calc = apply_rule(&r3, &db, MatchPolicy::Strict);
    let join_alg = Query::rel("r1")
        .join(Query::rel("r2"), [("b", "c")])
        .project(["a", "d"]);
    println!(
        "  rule (3): {}\n    calculus  = {}\n    algebra   = {} rows",
        r3,
        join_calc,
        join_alg.eval(&rdb).unwrap().len()
    );

    section("The Definition 4.4 anomaly (DESIGN.md §3.3)");
    let literal = apply_rule(&r3, &db, MatchPolicy::Literal);
    println!(
        "  Strict  (paper's prose):   {} joined pairs",
        join_calc.dot("r").as_set().unwrap().len()
    );
    println!(
        "  Literal (Def 4.4 verbatim): {} pairs — the cross product!",
        literal.dot("r").as_set().unwrap().len()
    );

    section("Automatic translation: algebra plans → calculus programs");
    let pipeline = Query::rel("r1")
        .join(Query::rel("r2"), [("b", "c")])
        .select_eq("d", 100)
        .project(["a", "d"]);
    let direct = pipeline.eval(&rdb).unwrap();
    let via_calculus = run_query_via_calculus(&rdb, &pipeline).unwrap();
    assert_eq!(direct, via_calculus);
    println!("  σπ⋈ pipeline agrees end-to-end:\n{direct}");
    let program = co_relational::translate_query(&rdb, &pipeline).unwrap();
    println!("  …computed by this generated program:\n{program}");
}

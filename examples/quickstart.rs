//! Quickstart: the complex-object model, the lattice, and the calculus in
//! five minutes.
//!
//! Run with `cargo run --example quickstart`.

use complex_objects::object::lattice::{intersect, union};
use complex_objects::object::order::le;
use complex_objects::object::{display, obj};
use complex_objects::prelude::*;

fn main() {
    // -----------------------------------------------------------------
    // 1. Objects: atoms, tuples, sets — freely nested, no schema.
    //    (Paper Definition 2.1 / Example 2.1.)
    // -----------------------------------------------------------------
    let person = obj!([
        name: [first: john, last: doe],
        age: 25,
        children: {john, mary, susan}
    ]);
    println!("a hierarchical person:\n  {person}\n");

    // The same thing via the parser (the paper's concrete syntax):
    let parsed =
        parse_object("[name: [first: john, last: doe], age: 25, children: {john, mary, susan}]")
            .expect("valid object syntax");
    assert_eq!(person, parsed);

    // Equality is the paper's semantic equality (Definition 2.2):
    assert_eq!(
        parse_object("[a: 1, b: 2]").unwrap(),
        parse_object("[b: 2, a: 1, c: bot]").unwrap(),
    );

    // -----------------------------------------------------------------
    // 2. The sub-object lattice (Section 3): ≤, union (lub), intersection
    //    (glb).
    // -----------------------------------------------------------------
    let a = obj!([name: peter, hobbies: {chess}]);
    let b = obj!([name: peter, age: 25]);
    println!("a         = {a}");
    println!("b         = {b}");
    println!("a ∪ b     = {}", union(&a, &b));
    println!("a ∩ b     = {}", intersect(&a, &b));
    assert!(le(&a, &union(&a, &b)));
    assert!(le(&intersect(&a, &b), &b));
    println!();

    // -----------------------------------------------------------------
    // 3. Formulas extract data (Definition 4.2): E(O) ≤ O.
    // -----------------------------------------------------------------
    let db = parse_object(
        "[people: {[name: ada,   born: 1815],
                   [name: alan,  born: 1912],
                   [name: grace, born: 1906]}]",
    )
    .unwrap();
    let f = parse_formula("[people: {[name: X, born: 1912]}]").unwrap();
    println!(
        "E(O) for {f}\n  = {}",
        interpret(&f, &db, MatchPolicy::Strict)
    );

    // -----------------------------------------------------------------
    // 4. Rules generate new structure (Definition 4.4), and programs run
    //    to a fixpoint (Theorem 4.1) on the engine.
    // -----------------------------------------------------------------
    let genealogy = parse_object(
        "[family: {[name: abraham, children: {[name: isaac]}],
                   [name: isaac,   children: {[name: esau], [name: jacob]}]}]",
    )
    .unwrap();
    let program = parse_program(
        "% Example 4.5 of the paper: descendants of abraham.
         [doa: {abraham}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .unwrap();
    let out = Engine::new(program).run(&genealogy).expect("converges");
    println!("\ndescendants of abraham = {}", out.database.dot("doa"));
    println!("engine stats: {}", out.stats);

    // -----------------------------------------------------------------
    // 5. Pretty-printing for larger objects.
    // -----------------------------------------------------------------
    println!(
        "\nthe closed database:\n{}",
        display::pretty(&out.database, 60)
    );

    // -----------------------------------------------------------------
    // 6. The hash-consed store behind it all: every composite built above
    //    was interned (canonical equality = pointer equality), and the
    //    lattice operations were memoized. The counters tell the story;
    //    shrink the memo capacity with CO_MEMO_SHARD_CAP, switch eviction
    //    with CO_MEMO_POLICY, or force parallel evaluation with
    //    CO_ENGINE_THREADS to watch them change.
    // -----------------------------------------------------------------
    println!("\n{}", complex_objects::object::store::stats());

    // -----------------------------------------------------------------
    // 7. Lifecycle: interned nodes live until a sweep proves them
    //    unreachable. Pin what must survive, drop the rest, collect.
    //    (Engines can do this automatically between rounds:
    //    `Engine::gc_every_rounds(1)` or CO_GC_EVERY_ROUND=1.)
    // -----------------------------------------------------------------
    use complex_objects::object::store;
    let root = store::pin(&out.database).expect("composites are pinnable");
    {
        // Transient intermediates nobody keeps…
        let _scratch: Vec<Object> = (0..1000)
            .map(|i| obj!([scratch: (i), pad: {(i), (i + 1)}]))
            .collect();
    }
    let swept = store::collect();
    println!("\nafter dropping 1000 scratch objects: {swept}");
    assert!(store::contains_node(root.id()), "pinned roots survive");
    println!("{}", store::stats());

    // -----------------------------------------------------------------
    // 8. Persistence: checkpoint → kill → restore → continue. A
    //    checkpoint is a `co-wire` snapshot — every distinct interned
    //    node encoded once, so the file tracks the DAG, not the tree —
    //    carrying the database, the program, and the engine config.
    //    Restoring (here; in practice in a *fresh* process after a crash
    //    or deploy) re-interns bottom-up and reaches the same fixpoint
    //    with a bit-identical trace.
    // -----------------------------------------------------------------
    let path = std::env::temp_dir().join(format!("quickstart_{}.cow", std::process::id()));
    let engine = Engine::new(
        parse_program(
            "[doa: {abraham}].
             [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
        )
        .unwrap(),
    );
    let genealogy = parse_object(
        "[family: {[name: abraham, children: {[name: isaac]}],
                   [name: isaac,   children: {[name: esau], [name: jacob]}]}]",
    )
    .unwrap();
    let stats = engine.checkpoint(&genealogy, &path).expect("checkpoint");
    println!("\ncheckpointed the database: {stats}");

    // …process exits, machine reboots, traffic moves…

    let restored = Engine::restore(&path).expect("restore");
    assert_eq!(restored.database, genealogy); // bit-identical structure
    let resumed = restored
        .engine
        .run(&restored.database)
        .expect("continues to the fixpoint");
    println!(
        "restored and resumed: descendants = {}",
        resumed.database.dot("doa")
    );

    // Checkpoint → mutate → **delta** → restore the chain. The second
    // checkpoint auto-selects a version-2 delta because the engine's
    // chain is live: it carries only the nodes the base lacks (the
    // fixpoint grew the database a little; everything else is referenced
    // by base-local id). `restore_chain` replays base then delta,
    // verifying each link's checksum.
    let delta_path =
        std::env::temp_dir().join(format!("quickstart_{}_delta.cow", std::process::id()));
    let stats = restored
        .engine
        .checkpoint(&resumed.database, &delta_path)
        .expect("delta checkpoint");
    println!("checkpointed the fixpoint as a delta: {stats}");
    println!(
        "on disk: {}",
        complex_objects::wire::describe(&delta_path).expect("inspectable")
    );
    let chain = Engine::restore_chain(&[path.clone(), delta_path.clone()]).expect("chain restore");
    assert_eq!(chain.database, resumed.database); // same node, same fixpoint
    assert_eq!(chain.database.node_id(), resumed.database.node_id());
    println!(
        "chain restored: descendants = {}",
        chain.database.dot("doa")
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&delta_path).ok();

    // -----------------------------------------------------------------
    // 9. Observability: everything above also recorded itself into the
    //    global co-obs registry — engine rounds, match/merge timings, GC
    //    pauses, wire encode/decode. One snapshot reads it all; the same
    //    registry is what a server returns for a `metrics` request and
    //    what the REPL's `metrics` command prints. (Set CO_TRACE=stderr
    //    to also stream per-round spans as JSON lines, and CO_METRICS=0
    //    to make every instrument a no-op.)
    // -----------------------------------------------------------------
    let metrics = complex_objects::obs::global().snapshot();
    let rounds = metrics.counter("engine.rounds").expect("engine ran above");
    assert!(rounds >= 2, "the fixpoint runs took at least two rounds");
    let match_ns = metrics
        .histogram("engine.match_ns")
        .expect("per-round match timings");
    assert_eq!(
        match_ns.count, rounds,
        "one match-phase observation per round"
    );
    assert!(match_ns.quantile(0.99) <= match_ns.max);
    println!("\nthe process's own story, from the metrics registry:\n{metrics}");
}

//! Deductive genealogy at scale — paper Example 4.5, grown into the kind of
//! workload the engine exists for: recursive reachability over a large
//! nested database, with strategy and index ablation.
//!
//! Run with `cargo run --release --example genealogy -- [people]`.

use complex_objects::object::{measure, Attr, Object};
use complex_objects::prelude::*;
use std::time::Instant;

/// Builds a random family forest of `n` people: person `i` is a child of
/// person `i / fanout` — a tree of the given fanout, so the recursion depth
/// is logarithmic and every iteration discovers a full generation.
fn family_forest(n: usize, fanout: usize) -> Object {
    let family = Object::set((0..n).map(|parent| {
        let children = Object::set(
            (1..=fanout)
                .map(|k| parent * fanout + k)
                .filter(|c| *c < n)
                .map(|c| Object::tuple([(Attr::new("name"), Object::str(format!("p{c}")))])),
        );
        Object::tuple([
            (Attr::new("name"), Object::str(format!("p{parent}"))),
            (Attr::new("children"), children),
        ])
    }));
    Object::tuple([(Attr::new("family"), family)])
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let fanout = 3;
    let db = family_forest(n, fanout);
    println!(
        "family forest: {n} people, fanout {fanout}, database size {} nodes\n",
        measure::size(&db)
    );

    let program = parse_program(
        "[doa: {p0}].
         [doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].",
    )
    .expect("program parses");

    let mut results: Vec<(String, usize, co_engine::EvalStats)> = Vec::new();
    for (label, strategy, indexes) in [
        ("naive, scan      ", Strategy::Naive, false),
        ("naive, indexed   ", Strategy::Naive, true),
        ("semi-naive, scan ", Strategy::SemiNaive, false),
        ("semi-naive, index", Strategy::SemiNaive, true),
    ] {
        let engine = Engine::new(program.clone())
            .strategy(strategy)
            .indexes(indexes)
            .guard(Guard::unlimited());
        let start = Instant::now();
        let out = engine.run(&db).expect("descendants closure converges");
        let elapsed = start.elapsed();
        let descendants = out.database.dot("doa").as_set().expect("a set").len();
        println!(
            "{label}  {elapsed:>10.2?}   iterations={:<3} candidates={:<10} descendants={descendants}",
            out.stats.iterations, out.stats.matching.candidates_tried
        );
        results.push((label.trim().to_string(), descendants, out.stats));
    }

    // All four configurations must agree — the ablation is performance-only.
    let counts: Vec<usize> = results.iter().map(|(_, d, _)| *d).collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "configs disagree!");
    println!(
        "\nall configurations found the same {} descendants of p0 ✓",
        counts[0]
    );
    println!(
        "semi-naive re-derived {:.1}× fewer substitutions than naive; \
         indexes cut candidate scans {:.1}×",
        results[0].2.matching.matches as f64 / results[2].2.matching.matches.max(1) as f64,
        results[0].2.matching.candidates_tried as f64
            / results[1].2.matching.candidates_tried.max(1) as f64,
    );
}

//! Nested relations, null values, and NF² restructuring — the §1
//! motivations of the paper ("CAD, office automation, document retrieval…
//! arbitrary hierarchical objects") on a document-management database.
//!
//! Run with `cargo run --example nested_relations`.

use co_relational::nf2::{nest, unnest};
use co_schema::{check, infer_type, Type};
use complex_objects::object::display;
use complex_objects::prelude::*;

fn main() {
    // A hierarchical document store: one object, no schema, nulls welcome.
    let db = parse_object(
        "[docs: {[title: \"Quarterly Report\",
                  authors: {alice, bob},
                  sections: {[heading: \"Intro\",   pages: 2],
                             [heading: \"Numbers\", pages: 7]}],
                 [title: \"Design Memo\",
                  authors: {carol},
                  sections: {[heading: \"Sketch\", pages: 3]}],
                 [title: \"Untitled Draft\",
                  authors: {}]}]",
    )
    .expect("valid object");
    println!("document store:\n{}\n", display::pretty(&db, 68));

    // ------------------------------------------------------------------
    // 1. Calculus queries straight over the nested structure — no joins,
    //    no decomposition, the pain points §1 lists for flat relations.
    // ------------------------------------------------------------------
    // Who wrote something with a section of ≥7 pages? (Selection deep in
    // the nesting, projecting an author set member.)
    let f = parse_formula("[docs: {[title: T, authors: {A}, sections: {[pages: 7]}]}]").unwrap();
    println!(
        "docs with a 7-page section (projected):\n  {}\n",
        interpret(&f, &db, MatchPolicy::Strict)
    );

    // Rule: build a flat author → title index from the nested store.
    let index_rule =
        parse_rule("[by_author: {[author: A, title: T]}] :- [docs: {[title: T, authors: {A}]}].")
            .unwrap();
    let index = apply_rule(&index_rule, &db, MatchPolicy::Strict);
    println!(
        "author index (derived by one rule):\n{}\n",
        display::pretty(&index, 68)
    );

    // The untitled draft has no authors: it simply contributes nothing —
    // the calculus treats missing data the way §1 wants.
    assert!(!index.to_string().contains("Untitled"));

    // ------------------------------------------------------------------
    // 2. NF² restructuring: unnest and nest (Jaeschke–Schek, cited in §1).
    // ------------------------------------------------------------------
    let docs = db.dot("docs");
    let flat_authors = unnest(docs, "authors").expect("authors is set-valued");
    println!(
        "after µ_authors (one row per author):\n{}\n",
        display::pretty(&flat_authors, 68)
    );
    let regrouped = nest(&flat_authors, "authors").expect("regroup");
    // Round trip is lossy exactly on the empty author set — the classic
    // NF² asymmetry.
    assert_ne!(&regrouped, docs);
    println!("ν_authors(µ_authors(docs)) lost the draft with no authors ✓\n");

    // ------------------------------------------------------------------
    // 3. Typing the nested store (§5 future work, implemented).
    // ------------------------------------------------------------------
    let doc_type = Type::set(Type::tuple([
        ("title", Type::required(Type::Str)),
        ("authors", Type::set(Type::Str)),
        (
            "sections",
            Type::set(Type::tuple([("heading", Type::Str), ("pages", Type::Int)])),
        ),
    ]));
    check(docs, &doc_type).expect("store conforms to the document type");
    println!("store conforms to:\n  {doc_type}");
    println!("\ninferred type:\n  {}", infer_type(docs));
}

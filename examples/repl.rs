//! An interactive shell for the complex-object calculus.
//!
//! Run with `cargo run --example repl`, then:
//!
//! ```text
//! co> db [r1: {[a: 1, b: 10], [a: 2, b: 20]}, r2: {[c: 10, d: 100]}]
//! co> ? [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}]
//! co> + [r: {[a: X, d: Z]}] :- [r1: {[a: X, b: Y]}, r2: {[c: Y, d: Z]}].
//! co> run
//! co> show
//! co> help
//! ```

use complex_objects::engine::CheckpointHandle;
use complex_objects::object::{display, measure, Object};
use complex_objects::prelude::*;
use std::io::{BufRead, Write};

struct Session {
    db: Object,
    program: Program,
    policy: MatchPolicy,
    /// The live checkpoint chain: set by `save`, extended by
    /// `save --delta`, replaced by `load`.
    ckpt: Option<CheckpointHandle>,
}

const HELP: &str = "\
commands:
  db <object>        set the database object
  show               print the database (pretty)
  ? <formula>        interpret a well-formed formula against the database
  + <rule.>          add a rule (or fact) to the program
  rules              list the program
  run                run the program to its closure (updates the database)
  policy strict|literal   choose the match policy (default strict)
  clear              drop all rules
  stats              database size/depth + object-store counters
  metrics            dump the co-obs registry (counters, gauges, latency
                     histograms with p50/p90/p99) accumulated this session
  gc                 sweep the object store (the database stays pinned)
  save <path>        full checkpoint of database + rules + policy
  save --delta <path>   checkpoint only what changed since the last save
                     (restores as a chain: pass every layer to load)
  load <path>...     restore a checkpoint chain, oldest layer first
                     (replaces database and rules)
  inspect <path>     describe a snapshot file without restoring it
  help               this text
  quit               exit";

impl Session {
    fn handle(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            return true;
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "quit" | "exit" => return false,
            "help" => println!("{HELP}"),
            "db" => match parse_object(rest) {
                Ok(o) => {
                    self.db = o;
                    println!("ok ({} nodes)", measure::size(&self.db));
                }
                Err(e) => println!("{}", e.render(rest)),
            },
            "show" => println!("{}", display::pretty(&self.db, 72)),
            "stats" => println!(
                "size = {} nodes, depth = {}\n{}",
                measure::size(&self.db),
                measure::depth(&self.db),
                complex_objects::object::store::stats(),
            ),
            "metrics" => {
                // The global co-obs registry: every engine run, GC sweep,
                // and wire encode this process did so far.
                let snapshot = complex_objects::obs::global().snapshot();
                if snapshot.is_empty() {
                    println!("(no metrics recorded yet — run something first)");
                } else {
                    print!("{snapshot}");
                }
            }
            "gc" => {
                // The session database is reachable (we hold it), but pin
                // it anyway: explicitness is the point of the command.
                let _root = complex_objects::object::store::pin(&self.db);
                println!("{}", complex_objects::object::store::collect());
            }
            "save" => {
                // `--delta` must be a whole token: `save --deltax foo`
                // is a usage error, not a delta to the file `x foo`.
                let (delta, path) = match rest.strip_prefix("--delta") {
                    Some(r) if r.is_empty() || r.starts_with(char::is_whitespace) => {
                        (true, r.trim())
                    }
                    _ => (false, rest),
                };
                if path.is_empty() || path.starts_with("--") {
                    println!("usage: save [--delta] <path>");
                } else {
                    let engine = Engine::new(self.program.clone()).policy(self.policy);
                    let result = if delta {
                        match &self.ckpt {
                            Some(base) => engine
                                .checkpoint_delta(&self.db, path, base)
                                .map(|(stats, handle)| (stats, Some(handle))),
                            None => {
                                println!("no base checkpoint in this session — `save` first");
                                return true;
                            }
                        }
                    } else {
                        engine
                            .checkpoint_full(&self.db, path)
                            .map(|stats| (stats, engine.last_checkpoint()))
                    };
                    match result {
                        Ok((stats, handle)) => {
                            self.ckpt = handle;
                            println!("saved to {path}: {stats}");
                            if let Some(h) = &self.ckpt {
                                if h.depth() > 1 {
                                    println!(
                                        "chain is {} layers — restore with: load {}",
                                        h.depth(),
                                        h.layers()
                                            .iter()
                                            .map(|p| p.display().to_string())
                                            .collect::<Vec<_>>()
                                            .join(" ")
                                    );
                                }
                            }
                        }
                        Err(e) => println!("{e}"),
                    }
                }
            }
            "load" => {
                let layers: Vec<&str> = rest.split_whitespace().collect();
                if layers.is_empty() {
                    println!("usage: load <path> [<delta path>...]");
                } else {
                    match Engine::restore_chain(&layers) {
                        Ok(restored) => {
                            self.db = restored.database;
                            self.program = restored.engine.program().clone();
                            self.policy = restored.engine.match_policy();
                            self.ckpt = restored.engine.last_checkpoint();
                            println!(
                                "loaded {rest}: {} nodes, {} rules",
                                measure::size(&self.db),
                                self.program.len()
                            );
                        }
                        Err(e) => println!("{e}"),
                    }
                }
            }
            "inspect" => {
                if rest.is_empty() {
                    println!("usage: inspect <path>");
                } else {
                    match complex_objects::wire::describe(rest) {
                        Ok(info) => println!("{info}"),
                        Err(e) => println!("{e}"),
                    }
                }
            }
            "?" => match parse_formula(rest) {
                Ok(f) => println!("{}", interpret(&f, &self.db, self.policy)),
                Err(e) => println!("{}", e.render(rest)),
            },
            "+" => match parse_rule(rest) {
                Ok(r) => {
                    println!("added rule #{}: {}", self.program.len(), r);
                    self.program.push(r);
                }
                Err(e) => println!("{}", e.render(rest)),
            },
            "rules" => {
                if self.program.is_empty() {
                    println!("(no rules)");
                } else {
                    println!("{}", self.program);
                }
            }
            "clear" => {
                self.program = Program::new();
                println!("rules cleared");
            }
            "policy" => match rest {
                "strict" => {
                    self.policy = MatchPolicy::Strict;
                    println!("policy = strict");
                }
                "literal" => {
                    self.policy = MatchPolicy::Literal;
                    println!("policy = literal (Definition 4.4 verbatim)");
                }
                _ => println!("usage: policy strict|literal"),
            },
            "run" => {
                let engine = Engine::new(self.program.clone())
                    .policy(self.policy)
                    .guard(Guard::interactive());
                match engine.run(&self.db) {
                    Ok(out) => {
                        println!("closure reached: {}", out.stats);
                        println!("{}", complex_objects::object::store::stats());
                        self.db = out.database;
                    }
                    Err(e) => println!("{e}"),
                }
            }
            _ => println!("unknown command `{cmd}` — try `help`"),
        }
        true
    }
}

fn main() {
    println!("complex-object calculus shell — `help` for commands");
    let mut session = Session {
        db: Object::empty_tuple(),
        program: Program::new(),
        policy: MatchPolicy::Strict,
        ckpt: None,
    };
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("co> ");
        std::io::stdout().flush().expect("stdout");
        let Some(Ok(line)) = lines.next() else {
            break;
        };
        if !session.handle(&line) {
            break;
        }
    }
    println!("bye");
}

//! Serving-layer walkthrough: one shared store, many sessions, snapshot
//! isolation in action.
//!
//! Starts an in-process server over the genealogy database, then drives
//! three sessions: a *pinned reader* frozen at version 1, a *writer*
//! committing new facts and running the descendants closure, and a
//! *fresh reader* that sees each new version. The pinned reader's
//! answers never change — same values, same interned node ids — while
//! the head advances underneath it.
//!
//! Run with `cargo run --example server`.

use complex_objects::engine::SharedEngine;
use complex_objects::prelude::*;
use complex_objects::server::{Client, Server, ServerConfig};

fn main() {
    let db = parse_object(
        "[family: {[name: abraham, children: {[name: isaac]}],
                   [name: isaac,   children: {[name: esau], [name: jacob]}]},
          doa: {abraham}]",
    )
    .unwrap();
    let shared = SharedEngine::new(Engine::new(Program::new()), db);
    let handle = Server::bind(shared, ServerConfig::from_env()).unwrap();
    println!("serving on {}\n", handle.addr());

    // Session 1: pin the seed version. Reads are now frozen at v1.
    let mut pinned = Client::connect(handle.addr()).unwrap();
    let (v, root) = pinned.snapshot().unwrap();
    println!("reader pinned version {v} (root id {root:?})");
    let (_, before) = pinned.query("[doa: {X}]").unwrap();
    println!("  doa at v1: {}", before.dot("doa"));

    // Session 2: a writer commits a fact, then the closure.
    let mut writer = Client::connect(handle.addr()).unwrap();
    let out = writer
        .advance("[family: {[name: jacob, children: {[name: joseph]}]}].")
        .unwrap();
    println!("writer committed fact → version {}", out.version);
    let out = writer
        .advance("[doa: {X}] :- [family: {[name: Y, children: {[name: X]}]}, doa: {Y}].")
        .unwrap();
    println!(
        "writer ran closure → version {} in {} iterations",
        out.version, out.iterations
    );

    // The pinned reader still sees v1 — same value, same interned node.
    let (v, after) = pinned.query("[doa: {X}]").unwrap();
    println!("\npinned reader, after both commits (still v{v}):");
    println!("  doa: {}", after.dot("doa"));
    assert_eq!(before, after);
    assert_eq!(before.node_id(), after.node_id());

    // A fresh session sees the advanced head.
    let mut fresh = Client::connect(handle.addr()).unwrap();
    let (v, now) = fresh.query("[doa: {X}]").unwrap();
    println!("fresh reader at v{v}:");
    println!("  doa: {}", now.dot("doa"));
    assert!(now.dot("doa").as_set().unwrap().len() > before.dot("doa").as_set().unwrap().len());

    // Release the pin: the reader's next query runs at the head.
    pinned.release().unwrap();
    let (v, released) = pinned.query("[doa: {X}]").unwrap();
    println!("released reader now at v{v}: doa = {}", released.dot("doa"));
    assert_eq!(released, now);

    handle.shutdown();
    println!("\nserver drained and shut down");
}
